#include "pheap/check.h"

#include <algorithm>
#include <unordered_set>

// Header-only use: pheap cannot link tsp_atlas (atlas depends on
// pheap), so the undo-log checks below validate the area's magic and
// geometry themselves instead of calling AtlasArea::Validate.
#include "atlas/log_layout.h"
#include "pheap/allocator.h"
#include "pheap/layout.h"

namespace tsp::pheap {
namespace {

constexpr std::size_t kMaxProblems = 16;

void AddProblem(CheckReport* report, std::string problem) {
  ++report->problems_total;
  if (report->problems.size() < kMaxProblems) {
    report->problems.push_back(std::move(problem));
  }
}

struct Extent {
  std::uint64_t offset;
  std::uint64_t size;
};

}  // namespace

std::string CheckReport::ToString() const {
  std::string out = ok ? "heap check OK" : "heap check FAILED";
  out += ": " + std::to_string(reachable_objects) + " live objects (" +
         std::to_string(reachable_bytes) + " B), " +
         std::to_string(free_blocks) + " free blocks (" +
         std::to_string(free_bytes) + " B), " +
         std::to_string(unaccounted_bytes) + " B unaccounted";
  if (log_rings_scanned > 0) {
    out += ", " + std::to_string(log_entries_scanned) +
           " log entries in " + std::to_string(log_rings_scanned) + " rings";
  }
  for (const std::string& problem : problems) {
    out += "\n  - " + problem;
  }
  if (problems_total > problems.size()) {
    out += "\n  (+" + std::to_string(problems_total - problems.size()) +
           " more problems not shown)";
  }
  return out;
}

void CheckReport::AppendTo(report::FindingSink* sink) const {
  for (const std::string& problem : problems) {
    std::string rule = "heap";
    std::string message = problem;
    // Problems may be tagged "rule-slug: message".
    const std::size_t colon = problem.find(": ");
    if (colon != std::string::npos && colon > 0 &&
        problem.find(' ') > colon) {
      rule = problem.substr(0, colon);
      message = problem.substr(colon + 2);
    }
    sink->AddError("heap-check", rule, "", message);
  }
}

CheckReport CheckHeap(const PersistentHeap& heap,
                      const TypeRegistry& registry) {
  CheckReport report;
  const MappedRegion* region = heap.region();
  const RegionHeader* header = region->header();

  // --- header sanity ---
  if (header->magic != kRegionMagic) {
    AddProblem(&report, "bad region magic");
    return report;
  }
  const std::uint64_t arena_start = header->arena_offset;
  const std::uint64_t arena_end = arena_start + header->arena_size;
  const std::uint64_t bump =
      header->bump_offset.load(std::memory_order_relaxed);
  if (arena_end > header->region_size ||
      header->runtime_area_offset + header->runtime_area_size !=
          arena_start) {
    AddProblem(&report, "region layout offsets are inconsistent");
  }
  if (bump < arena_start || bump > arena_end) {
    AddProblem(&report, "bump pointer outside the arena");
    return report;
  }

  std::vector<Extent> extents;

  // --- free lists ---
  const std::uint64_t max_blocks = (bump - arena_start) / (2 * kGranule) + 1;
  for (std::size_t size_class = 0; size_class < Allocator::kNumSizeClasses;
       ++size_class) {
    const std::size_t expected_size =
        Allocator::ClassBlockSize(static_cast<int>(size_class));
    std::uint64_t offset =
        OffsetOf(header->free_list_head(size_class).load(
            std::memory_order_relaxed));
    std::uint64_t walked = 0;
    while (offset != 0) {
      if (offset < arena_start || offset + expected_size > bump ||
          offset % kGranule != 0) {
        AddProblem(&report, "free block outside arena in class " +
                                std::to_string(size_class));
        break;
      }
      const auto* block =
          static_cast<const BlockHeader*>(region->FromOffset(offset));
      if (block->magic != BlockHeader::kFreeMagic) {
        AddProblem(&report, "free-list block without free magic in class " +
                                std::to_string(size_class));
        break;
      }
      if (block->block_size != expected_size) {
        // Raw comparison on purpose: Free clears the owner tag, so a
        // tagged word on a free list means a torn or foreign block.
        AddProblem(&report,
                   "free block of wrong size in class " +
                       std::to_string(size_class) + ": " +
                       std::to_string(block->block_size));
        break;
      }
      extents.push_back({offset, expected_size});
      ++report.free_blocks;
      report.free_bytes += expected_size;
      if (++walked > max_blocks) {
        AddProblem(&report, "free-list cycle in class " +
                                std::to_string(size_class));
        break;
      }
      offset = static_cast<const FreeBlockPayload*>(
                   region->FromOffset(offset + sizeof(BlockHeader)))
                   ->next_offset;
    }
  }

  // --- reachability walk (mark without sweep) ---
  std::unordered_set<std::uint64_t> visited;
  std::vector<const void*> pending;
  const std::uint64_t root =
      header->root_offset.load(std::memory_order_relaxed);
  if (root != 0) pending.push_back(region->FromOffset(root));
  const PointerVisitor visit = [&pending](const void* p) {
    if (p != nullptr) pending.push_back(p);
  };
  while (!pending.empty()) {
    const void* payload = pending.back();
    pending.pop_back();
    if (!region->Contains(payload)) continue;  // foreign pointers are legal
    const std::uint64_t payload_offset = region->ToOffset(payload);
    if (payload_offset < arena_start + sizeof(BlockHeader) ||
        payload_offset % kGranule != 0) {
      AddProblem(&report, "reachable pointer is not a valid payload at " +
                              std::to_string(payload_offset));
      continue;
    }
    const std::uint64_t block_offset = payload_offset - sizeof(BlockHeader);
    if (!visited.insert(block_offset).second) continue;
    const auto* block =
        static_cast<const BlockHeader*>(region->FromOffset(block_offset));
    if (block->magic != BlockHeader::kAllocatedMagic) {
      AddProblem(&report, "reachable block without allocated magic at " +
                              std::to_string(block_offset));
      continue;
    }
    if (Allocator::SizeClassOf(block->size()) < 0 ||
        block_offset + block->size() > bump) {
      AddProblem(&report, "reachable block with bad size at " +
                              std::to_string(block_offset));
      continue;
    }
    extents.push_back({block_offset, block->size()});
    ++report.reachable_objects;
    report.reachable_bytes += block->size();
    if (block->type_id != 0) {
      const TypeInfo* info = registry.Find(block->type_id);
      if (info != nullptr && info->trace) info->trace(block + 1, visit);
    }
  }

  // --- overlap + accounting ---
  std::sort(extents.begin(), extents.end(),
            [](const Extent& a, const Extent& b) {
              return a.offset < b.offset;
            });
  std::uint64_t covered = 0;
  std::uint64_t cursor = arena_start;
  for (const Extent& extent : extents) {
    if (extent.offset < cursor) {
      AddProblem(&report,
                 "extents overlap at " + std::to_string(extent.offset) +
                     " (free list and live data collide, or duplicate "
                     "free blocks)");
    }
    covered += extent.size;
    cursor = std::max(cursor, extent.offset + extent.size);
  }
  // Not a problem by itself: besides GC slivers and crash leaks (both
  // reclaimed by the next GC), bytes parked in live thread magazines or
  // remote-free inboxes are intentionally on no list and unreachable.
  const std::uint64_t used = bump - arena_start;
  report.unaccounted_bytes = used > covered ? used - covered : 0;

  // --- undo-log well-formedness ---
  // Only when the runtime area holds a formatted Atlas log (pheap-only
  // heaps and never-initialized runtimes are silently skipped).
  const std::uint64_t area_size = header->runtime_area_size;
  if (area_size >= sizeof(atlas::AtlasAreaHeader)) {
    const char* area_base = static_cast<const char*>(
        region->FromOffset(header->runtime_area_offset));
    const auto* area =
        reinterpret_cast<const atlas::AtlasAreaHeader*>(area_base);
    if (area->magic == atlas::kAtlasMagic) {
      const std::uint64_t slots_bytes =
          static_cast<std::uint64_t>(area->max_threads) *
          sizeof(atlas::ThreadLogHeader);
      const std::uint64_t entries_bytes =
          static_cast<std::uint64_t>(area->max_threads) *
          area->entries_per_thread * sizeof(atlas::LogEntry);
      const std::uint64_t counter_bytes =
          static_cast<std::uint64_t>(area->max_threads) *
          area->counter_slots_per_thread * sizeof(atlas::CounterSlot);
      if (area->version > atlas::kAtlasFormatVersion) {
        // A newer producer may have moved the geometry or added record
        // kinds; guessing would report phantom corruption. Surface the
        // version mismatch itself and skip the detailed scan.
        AddProblem(&report,
                   "undo-log: log format version " +
                       std::to_string(area->version) +
                       " is newer than this tool understands (max " +
                       std::to_string(atlas::kAtlasFormatVersion) +
                       "); re-run with a newer build");
      } else if (area->max_threads == 0 || area->entries_per_thread == 0 ||
          area->slots_offset + slots_bytes > area_size ||
          area->entries_offset + entries_bytes > area_size ||
          (area->counter_slots_per_thread > 0 &&
           area->counter_slots_offset + counter_bytes > area_size)) {
        AddProblem(&report, "undo-log: Atlas area geometry exceeds the "
                            "runtime area");
      } else {
        const auto* slots = reinterpret_cast<const atlas::ThreadLogHeader*>(
            area_base + area->slots_offset);
        const auto* entries = reinterpret_cast<const atlas::LogEntry*>(
            area_base + area->entries_offset);
        for (std::uint32_t t = 0; t < area->max_threads; ++t) {
          const atlas::ThreadLogHeader& slot = slots[t];
          const std::uint64_t head =
              slot.head.load(std::memory_order_relaxed);
          const std::uint64_t tail =
              slot.tail.load(std::memory_order_relaxed);
          if (head == tail) continue;
          ++report.log_rings_scanned;
          if (head > tail || tail - head > area->entries_per_thread) {
            AddProblem(&report, "undo-log: ring " + std::to_string(t) +
                                    " indices are corrupt (head " +
                                    std::to_string(head) + ", tail " +
                                    std::to_string(tail) + ")");
            continue;
          }
          const atlas::LogEntry* ring =
              entries + static_cast<std::uint64_t>(t) *
                            area->entries_per_thread;
          std::uint64_t last_store_seq = 0;
          std::int64_t acquire_depth = 0;
          for (std::uint64_t i = head; i < tail; ++i) {
            const atlas::LogEntry& entry =
                ring[i % area->entries_per_thread];
            ++report.log_entries_scanned;
            switch (entry.kind) {
              case atlas::EntryKind::kStoreRange: {
                if (entry.seq <= last_store_seq) {
                  AddProblem(&report,
                             "undo-log: ring " + std::to_string(t) +
                                 " stamp not monotone at entry " +
                                 std::to_string(i));
                }
                last_store_seq = entry.seq;
                const std::uint64_t len = entry.payload;
                if (len == 0 || len % 8 != 0 ||
                    entry.addr_offset % 8 != 0 ||
                    entry.aux != atlas::RangeContinuationCount(len) ||
                    i + entry.aux >= tail ||
                    entry.addr_offset < arena_start ||
                    entry.addr_offset + len > arena_end) {
                  AddProblem(&report,
                             "undo-log: ring " + std::to_string(t) +
                                 " malformed range record at entry " +
                                 std::to_string(i));
                  break;
                }
                // The following `aux` entries are raw old bytes, not
                // LogEntries; skip them.
                report.log_entries_scanned += entry.aux;
                i += entry.aux;
                break;
              }
              case atlas::EntryKind::kStore:
                // Leased stamp blocks are per-thread and monotone, so
                // stamps strictly increase along one ring.
                if (entry.seq <= last_store_seq) {
                  AddProblem(&report,
                             "undo-log: ring " + std::to_string(t) +
                                 " stamp not monotone at entry " +
                                 std::to_string(i) + " (" +
                                 std::to_string(entry.seq) + " after " +
                                 std::to_string(last_store_seq) + ")");
                }
                last_store_seq = entry.seq;
                if (entry.size == 0 || entry.size > 8 ||
                    entry.addr_offset < arena_start ||
                    entry.addr_offset + entry.size > arena_end) {
                  AddProblem(&report,
                             "undo-log: ring " + std::to_string(t) +
                                 " store record at entry " +
                                 std::to_string(i) +
                                 " targets outside the arena");
                }
                break;
              case atlas::EntryKind::kAcquire:
                ++acquire_depth;
                break;
              case atlas::EntryKind::kRelease:
                // A crash can truncate trailing acquires, but a release
                // without a prior acquire in the retained window means
                // the trim protocol dropped the wrong entries.
                if (--acquire_depth < 0) {
                  AddProblem(&report,
                             "undo-log: ring " + std::to_string(t) +
                                 " release without matching acquire at "
                                 "entry " +
                                 std::to_string(i));
                  acquire_depth = 0;
                }
                break;
              case atlas::EntryKind::kAlloc:
                if (entry.addr_offset <
                        arena_start + sizeof(BlockHeader) ||
                    entry.addr_offset > bump) {
                  AddProblem(&report,
                             "undo-log: ring " + std::to_string(t) +
                                 " alloc record at entry " +
                                 std::to_string(i) +
                                 " payload outside the arena");
                }
                break;
              case atlas::EntryKind::kOcsBegin:
              case atlas::EntryKind::kOcsCommit:
                break;
              default:
                if (static_cast<std::uint8_t>(entry.kind) >
                    atlas::kMaxKnownEntryKind) {
                  AddProblem(&report,
                             "undo-log: ring " + std::to_string(t) +
                                 " record kind " +
                                 std::to_string(static_cast<int>(
                                     entry.kind)) +
                                 " at entry " + std::to_string(i) +
                                 " is newer than this tool understands "
                                 "(max " +
                                 std::to_string(static_cast<int>(
                                     atlas::kMaxKnownEntryKind)) +
                                 "); re-run with a newer build");
                } else {
                  AddProblem(&report,
                             "undo-log: ring " + std::to_string(t) +
                                 " invalid entry kind " +
                                 std::to_string(static_cast<int>(
                                     entry.kind)) +
                                 " at entry " + std::to_string(i));
                }
                break;
            }
          }
        }
        // Armed FliT counter slots are undo records too; a consistent
        // (even-version) slot must point at an aligned word inside the
        // arena.
        if (area->counter_slots_per_thread > 0) {
          const auto* counter_base =
              reinterpret_cast<const atlas::CounterSlot*>(
                  area_base + area->counter_slots_offset);
          for (std::uint32_t t = 0; t < area->max_threads; ++t) {
            const atlas::CounterSlot* counters =
                counter_base + static_cast<std::uint64_t>(t) *
                                   area->counter_slots_per_thread;
            for (std::uint32_t s = 0;
                 s < area->counter_slots_per_thread; ++s) {
              const atlas::CounterSlot& cs = counters[s];
              if (cs.addr_offset == 0 ||
                  cs.version.load(std::memory_order_relaxed) % 2 != 0) {
                continue;
              }
              if (cs.addr_offset % 8 != 0 ||
                  cs.addr_offset < arena_start ||
                  cs.addr_offset + 8 > arena_end) {
                AddProblem(&report,
                           "undo-log: counter slot " + std::to_string(s) +
                               " of thread " + std::to_string(t) +
                               " targets outside the arena");
              }
            }
          }
        }
      }
    }
  }

  report.ok = report.problems_total == 0;
  return report;
}

}  // namespace tsp::pheap
