// Copyright 2026 The TSP Authors.
// Recovery-time mark-sweep garbage collector.
//
// Crashes can leak persistent memory (objects allocated but not yet
// linked into the data structure, blocks reserved but never
// initialized, free lists torn mid-update). Following Atlas — which
// "recently incorporated a recovery-time garbage collector to reclaim
// leaked memory" — recovery discards all allocator metadata, marks
// every object reachable from the heap root via registered trace
// functions, and rebuilds the free lists from the unreachable gaps.
//
// Must run single-threaded, with no concurrent heap mutators (it is a
// recovery/quiesced-state operation).

#ifndef TSP_PHEAP_GC_H_
#define TSP_PHEAP_GC_H_

#include <cstdint>

#include "pheap/allocator.h"
#include "pheap/region.h"
#include "pheap/type_registry.h"

namespace tsp::pheap {

/// Result of a mark-sweep pass.
struct GcStats {
  /// Objects reachable from the root.
  std::uint64_t live_objects = 0;
  /// Bytes in live blocks (headers included).
  std::uint64_t live_bytes = 0;
  /// Free blocks pushed onto rebuilt free lists.
  std::uint64_t free_blocks = 0;
  /// Bytes in those free blocks.
  std::uint64_t free_bytes = 0;
  /// Bytes returned to the bump region (tail after the last live block).
  std::uint64_t tail_reclaimed_bytes = 0;
  /// Granule-sized slivers that could not be formed into a class block.
  std::uint64_t sliver_bytes = 0;
  /// Pointers encountered that failed validation (non-null, in-region,
  /// but not a valid allocated block) — should be 0 after a correct
  /// rollback.
  std::uint64_t invalid_pointers = 0;
};

/// Runs mark-sweep over `allocator`'s region: marks from the root using
/// `registry` trace functions, then resets the allocator metadata and
/// rebuilds free lists from unreachable space.
GcStats RunMarkSweepGc(Allocator* allocator, const TypeRegistry& registry);

}  // namespace tsp::pheap

#endif  // TSP_PHEAP_GC_H_
