// Copyright 2026 The TSP Authors.
// Runtime registry of persistent object types, used by the recovery-time
// garbage collector to trace pointers embedded in heap objects.
//
// Persistent types opt in by declaring
//     static constexpr std::uint32_t kPersistentTypeId = <nonzero id>;
// and registering a trace function each run (registration is volatile
// state and must be repeated per process, like Atlas's recovery hooks).
// Objects allocated with type id 0 are leaves: they contain no pointers
// into the persistent heap.

#ifndef TSP_PHEAP_TYPE_REGISTRY_H_
#define TSP_PHEAP_TYPE_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

namespace tsp::pheap {

/// Callback handed to trace functions; call it once per embedded pointer
/// to a persistent payload (null and out-of-arena pointers are ignored
/// by the GC, so tracing may pass them unconditionally).
using PointerVisitor = std::function<void(const void*)>;

/// Visits every pointer stored in the object at `payload`.
using TraceFn = std::function<void(const void* payload,
                                   const PointerVisitor& visit)>;

/// Describes one persistent type.
struct TypeInfo {
  std::uint32_t type_id = 0;
  std::string name;
  TraceFn trace;  // null for leaf types
};

/// Registry keyed by type id. Not thread-safe for mutation; build it at
/// startup, then share it read-only.
class TypeRegistry {
 public:
  /// Registers `info.type_id`. Re-registering an id replaces it (handy
  /// in tests); id 0 is reserved for leaves and rejected.
  void Register(TypeInfo info);

  /// Convenience: register a type that declares kPersistentTypeId.
  template <typename T>
  void Register(std::string name, TraceFn trace) {
    Register(TypeInfo{T::kPersistentTypeId, std::move(name),
                      std::move(trace)});
  }

  /// Returns the registered info or nullptr. Unregistered nonzero ids
  /// are treated as leaves by the GC (with a warning).
  const TypeInfo* Find(std::uint32_t type_id) const;

  std::size_t size() const { return types_.size(); }

 private:
  std::unordered_map<std::uint32_t, TypeInfo> types_;
};

}  // namespace tsp::pheap

#endif  // TSP_PHEAP_TYPE_REGISTRY_H_
