#include "pheap/backend.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace tsp::pheap {
namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

std::string Hex(std::uintptr_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%" PRIxPTR, v);
  return buf;
}

/// One fixed-address mmap, shared by every backend. `fd` < 0 maps
/// anonymous memory. Failure names the occupying mapping when there is
/// one.
StatusOr<void*> MapRangeAt(int fd, std::size_t size, std::uintptr_t addr,
                           int prot, int extra_flags) {
  void* want = reinterpret_cast<void*>(addr);
  int flags = extra_flags;
  if (fd < 0) flags |= MAP_ANONYMOUS;
#ifdef MAP_FIXED_NOREPLACE
  flags |= MAP_FIXED_NOREPLACE;
  void* got = mmap(want, size, prot, flags, fd, 0);
  if (got == MAP_FAILED) {
    const std::string conflict = DescribeMappingConflict(addr, size);
    std::string msg = "cannot map region at its fixed address " + Hex(addr) +
                      ": " + std::strerror(errno);
    if (!conflict.empty()) msg += "; " + conflict;
    return Status::FailedPrecondition(std::move(msg));
  }
#else
  void* got = mmap(want, size, prot, flags, fd, 0);
  if (got == MAP_FAILED) return ErrnoStatus("mmap");
#endif
  if (got != want) {
    munmap(got, size);
    const std::string conflict = DescribeMappingConflict(addr, size);
    std::string msg = "kernel mapped the region away from " + Hex(addr) +
                      "; the fixed range is occupied";
    if (!conflict.empty()) msg += ": " + conflict;
    return Status::FailedPrecondition(std::move(msg));
  }
  return got;
}

}  // namespace

std::string DescribeMappingConflict(std::uintptr_t addr, std::size_t size) {
  std::ifstream maps("/proc/self/maps");
  if (!maps.is_open()) return "";
  const std::uintptr_t lo = addr;
  const std::uintptr_t hi = addr + size;
  std::string description;
  int overlaps = 0;
  std::string line;
  while (std::getline(maps, line)) {
    std::uintptr_t start = 0;
    std::uintptr_t end = 0;
    const char* text = line.c_str();
    char* after = nullptr;
    start = std::strtoull(text, &after, 16);
    if (after == nullptr || *after != '-') continue;
    end = std::strtoull(after + 1, &after, 16);
    if (start >= hi || end <= lo) continue;
    // The pathname (or [heap]/[stack]/anon) is the last column.
    std::string what = "anonymous mapping";
    const std::size_t space = line.find_last_of(' ');
    if (space != std::string::npos && space + 1 < line.size()) {
      what = line.substr(space + 1);
    }
    ++overlaps;
    if (overlaps == 1) {
      description = "requested range [" + Hex(lo) + "," + Hex(hi) +
                    ") overlaps " + what + " mapped at [" + Hex(start) + "," +
                    Hex(end) + ")";
    }
  }
  if (overlaps > 1) {
    description += " (and " + std::to_string(overlaps - 1) + " more)";
  }
  return description;
}

// --- PosixFileBackend ---

StatusOr<void*> PosixFileBackend::CreateAndMap(const std::string& path,
                                               std::size_t size,
                                               std::uintptr_t addr) {
  const int fd = open(path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    if (errno == EEXIST) {
      return Status::AlreadyExists("region file exists: " + path);
    }
    return ErrnoStatus("open " + path);
  }
  if (ftruncate(fd, static_cast<off_t>(size)) != 0) {
    const Status s = ErrnoStatus("ftruncate " + path);
    close(fd);
    unlink(path.c_str());
    return s;
  }
  auto mapped = MapRangeAt(fd, size, addr, PROT_READ | PROT_WRITE,
                           MAP_SHARED);
  close(fd);  // The mapping keeps the file alive.
  if (!mapped.ok()) unlink(path.c_str());
  return mapped;
}

Status PosixFileBackend::PeekHeader(const std::string& path, void* out,
                                    std::size_t n,
                                    std::uint64_t* store_size) {
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no region file: " + path);
    return ErrnoStatus("open " + path);
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    const Status s = ErrnoStatus("fstat " + path);
    close(fd);
    return s;
  }
  *store_size = static_cast<std::uint64_t>(st.st_size);
  std::memset(out, 0, n);
  const std::size_t want =
      n < static_cast<std::size_t>(st.st_size)
          ? n
          : static_cast<std::size_t>(st.st_size);
  std::size_t done = 0;
  while (done < want) {
    const ssize_t got = pread(fd, static_cast<char*>(out) + done,
                              want - done, static_cast<off_t>(done));
    if (got < 0) {
      const Status s = ErrnoStatus("pread " + path);
      close(fd);
      return s;
    }
    if (got == 0) break;
    done += static_cast<std::size_t>(got);
  }
  close(fd);
  return Status::OK();
}

StatusOr<void*> PosixFileBackend::MapExisting(const std::string& path,
                                              std::size_t size,
                                              std::uintptr_t addr,
                                              bool read_only) {
  const int fd = open(path.c_str(), read_only ? O_RDONLY : O_RDWR);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no region file: " + path);
    return ErrnoStatus("open " + path);
  }
  auto mapped = read_only
                    ? MapRangeAt(fd, size, addr, PROT_READ, MAP_PRIVATE)
                    : MapRangeAt(fd, size, addr, PROT_READ | PROT_WRITE,
                                 MAP_SHARED);
  close(fd);
  return mapped;
}

void PosixFileBackend::Unmap(void* base, std::size_t size) {
  munmap(base, size);
}

Status PosixFileBackend::Sync(void* base, std::size_t size) {
  if (msync(base, size, MS_SYNC) != 0) return ErrnoStatus("msync");
  return Status::OK();
}

Status PosixFileBackend::Remove(const std::string& path) {
  if (unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("unlink " + path);
  }
  return Status::OK();
}

// --- DevShmBackend ---

std::string DevShmBackend::ResolvePath(const std::string& path) const {
  if (!path.empty() && path[0] == '/') return path;
  return "/dev/shm/" + path;
}

// --- AnonTestBackend ---

StatusOr<void*> AnonTestBackend::CreateAndMap(const std::string& path,
                                              std::size_t size,
                                              std::uintptr_t addr) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stores_.count(path) > 0) {
    return Status::AlreadyExists("anon-test store exists: " + path);
  }
  TSP_ASSIGN_OR_RETURN(
      void* base,
      MapRangeAt(-1, size, addr, PROT_READ | PROT_WRITE, MAP_PRIVATE));
  Store& store = stores_[path];
  store.size = size;
  store.mapped_base = base;
  return base;
}

Status AnonTestBackend::PeekHeader(const std::string& path, void* out,
                                   std::size_t n, std::uint64_t* store_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = stores_.find(path);
  if (it == stores_.end()) {
    return Status::NotFound("no anon-test store: " + path);
  }
  const Store& store = it->second;
  *store_size = store.size;
  std::memset(out, 0, n);
  const std::size_t want = n < store.size ? n : store.size;
  if (store.mapped_base != nullptr) {
    std::memcpy(out, store.mapped_base, want);
  } else {
    std::memcpy(out, store.image.data(), want);
  }
  return Status::OK();
}

StatusOr<void*> AnonTestBackend::MapExisting(const std::string& path,
                                             std::size_t size,
                                             std::uintptr_t addr,
                                             bool read_only) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = stores_.find(path);
  if (it == stores_.end()) {
    return Status::NotFound("no anon-test store: " + path);
  }
  Store& store = it->second;
  if (store.mapped_base != nullptr) {
    return Status::FailedPrecondition(
        "anon-test store is already mapped in this process: " + path);
  }
  if (size != store.size) {
    return Status::InvalidArgument("anon-test store size mismatch");
  }
  TSP_ASSIGN_OR_RETURN(
      void* base,
      MapRangeAt(-1, size, addr, PROT_READ | PROT_WRITE, MAP_PRIVATE));
  std::memcpy(base, store.image.data(), store.image.size());
  if (read_only) {
    // A read-only view never writes the image back (see Unmap), so the
    // page protection is only advisory here.
    mprotect(base, size, PROT_READ);
    return base;
  }
  store.mapped_base = base;
  return base;
}

void AnonTestBackend::Unmap(void* base, std::size_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [path, store] : stores_) {
    (void)path;
    if (store.mapped_base == base) {
      // Unmapping *is* this backend's persistence: the image survives
      // for the next MapExisting, clean shutdown or not.
      store.image.assign(static_cast<unsigned char*>(base),
                         static_cast<unsigned char*>(base) + size);
      store.mapped_base = nullptr;
      break;
    }
  }
  munmap(base, size);
}

Status AnonTestBackend::Sync(void* base, std::size_t size) {
  (void)base;
  (void)size;
  return Status::OK();  // nothing below the mapping to sync to
}

Status AnonTestBackend::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  stores_.erase(path);
  return Status::OK();
}

// --- SimNvmShadowBackend ---

StatusOr<void*> SimNvmShadowBackend::CreateAndMap(const std::string& path,
                                                  std::size_t size,
                                                  std::uintptr_t addr) {
  TSP_ASSIGN_OR_RETURN(void* base,
                       PosixFileBackend::CreateAndMap(path, size, addr));
  shadow_ = std::make_unique<simnvm::SimNvm>(size, options_.cache_capacity,
                                             options_.eviction_seed);
  region_base_ = base;
  region_size_ = size;
  return base;
}

StatusOr<void*> SimNvmShadowBackend::MapExisting(const std::string& path,
                                                 std::size_t size,
                                                 std::uintptr_t addr,
                                                 bool read_only) {
  TSP_ASSIGN_OR_RETURN(
      void* base, PosixFileBackend::MapExisting(path, size, addr, read_only));
  if (!read_only) {
    shadow_ = std::make_unique<simnvm::SimNvm>(size, options_.cache_capacity,
                                               options_.eviction_seed);
    region_base_ = base;
    region_size_ = size;
    // Seed the shadow NVM with the region's current durable contents so
    // crash images start from reality, not zeroes.
    Status mirrored = MirrorRegion();
    if (!mirrored.ok()) return mirrored;
    shadow_->FlushRange(0, size);
    shadow_->ResetStats();
  }
  return base;
}

Status SimNvmShadowBackend::MirrorRange(std::uint64_t offset, std::size_t n) {
  if (shadow_ == nullptr || region_base_ == nullptr) {
    return Status::FailedPrecondition("no region mapped to mirror");
  }
  if (offset + n > region_size_) {
    return Status::OutOfRange("mirror range exceeds the region");
  }
  // 8-byte store granularity, matching SimNvm's program view.
  const std::uint64_t first = offset & ~7ULL;
  const std::uint64_t last = (offset + n + 7ULL) & ~7ULL;
  const char* base = static_cast<const char*>(region_base_);
  for (std::uint64_t at = first; at < last && at + 8 <= region_size_;
       at += 8) {
    std::uint64_t word;
    std::memcpy(&word, base + at, 8);
    shadow_->Store(at, word);
  }
  return Status::OK();
}

Status SimNvmShadowBackend::Sync(void* base, std::size_t size) {
  TSP_RETURN_IF_ERROR(PosixFileBackend::Sync(base, size));
  // A sync is an explicit durability point: in the shadow model that is
  // "mirror everything, then flush every line".
  TSP_RETURN_IF_ERROR(MirrorRegion());
  shadow_->FlushRange(0, region_size_);
  return Status::OK();
}

std::shared_ptr<RegionBackend> DefaultBackend() {
  static std::shared_ptr<RegionBackend> backend =
      std::make_shared<PosixFileBackend>();
  return backend;
}

}  // namespace tsp::pheap
