// Copyright 2026 The TSP Authors.
// PersistentHeap: the public facade over region + allocator + root +
// recovery GC. This is the "persistent heap" of the paper: application
// data lives here, is manipulated with ordinary loads and stores, and
// must be reachable from a heap-wide root (get_root/set_root).

#ifndef TSP_PHEAP_HEAP_H_
#define TSP_PHEAP_HEAP_H_

#include <concepts>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>

#include "common/status.h"
#include "obs/recorder.h"
#include "pheap/allocator.h"
#include "pheap/gc.h"
#include "pheap/region.h"
#include "pheap/sanitizer.h"
#include "pheap/type_registry.h"

namespace tsp::pheap {

/// Detects types that declare a persistent type id for GC tracing.
template <typename T>
concept HasPersistentTypeId = requires {
  { T::kPersistentTypeId } -> std::convertible_to<std::uint32_t>;
};

/// A persistent heap backed by one mapped region file.
///
/// Lifecycle:
///   * Create/Open/OpenOrCreate — map the file at its fixed address.
///   * needs_recovery() — true when the previous session did not close
///     cleanly; run the resilience runtime's rollback (if any), then
///     RunRecoveryGc().
///   * CloseClean() — marks an orderly shutdown. Simply destroying the
///     heap (or crashing) leaves the unclean flag set, which is exactly
///     what recovery keys off.
///
/// Thread safety: Alloc/Free/New are lock-free; root access is atomic.
class PersistentHeap {
 public:
  static StatusOr<std::unique_ptr<PersistentHeap>> Create(
      const std::string& path, const RegionOptions& options = {});
  static StatusOr<std::unique_ptr<PersistentHeap>> Open(
      const std::string& path,
      std::shared_ptr<RegionBackend> backend = nullptr);

  /// Read-only attach for diagnostics (see MappedRegion::OpenReadOnly).
  /// Allocation/mutation through such a heap is undefined; use it only
  /// with const inspection APIs (CheckHeap, root traversal).
  static StatusOr<std::unique_ptr<PersistentHeap>> OpenReadOnly(
      const std::string& path,
      std::shared_ptr<RegionBackend> backend = nullptr);
  static StatusOr<std::unique_ptr<PersistentHeap>> OpenOrCreate(
      const std::string& path, const RegionOptions& options = {});

  PersistentHeap(const PersistentHeap&) = delete;
  PersistentHeap& operator=(const PersistentHeap&) = delete;

  /// True iff the previous session ended without CloseClean, so the
  /// resilience runtime should run recovery (rollback + GC).
  bool needs_recovery() const { return region_->opened_after_crash(); }

  /// Raw allocation; see Allocator::Alloc.
  void* Alloc(std::size_t size, std::uint32_t type_id = 0) {
    return allocator_.Alloc(size, type_id);
  }
  void Free(void* payload) { allocator_.Free(payload); }

  /// Allocates and constructs a T. Persistent types should be trivially
  /// destructible (their destructor never runs on crash) and declare
  /// kPersistentTypeId if they embed pointers to other heap objects.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "persistent objects must be trivially destructible");
    std::uint32_t type_id = 0;
    if constexpr (HasPersistentTypeId<T>) type_id = T::kPersistentTypeId;
    void* p = Alloc(sizeof(T), type_id);
    if (p == nullptr) return nullptr;
    // Constructing a freshly allocated (hence unreachable, unpublished)
    // object is a blessed write under TSPSan: nothing can roll it back.
    ScopedWriteWindow window(p, sizeof(T));
    return new (p) T(std::forward<Args>(args)...);
  }

  /// Frees an object previously obtained from New.
  template <typename T>
  void Delete(T* object) {
    Free(object);
  }

  /// get_root/set_root of the paper: the single entry point from which
  /// all live persistent data must be reachable.
  template <typename T = void>
  T* root() const {
    const std::uint64_t offset =
        region_->header()->root_offset.load(std::memory_order_acquire);
    return offset == 0 ? nullptr : static_cast<T*>(region_->FromOffset(offset));
  }
  void set_root(const void* payload) {
    region_->header()->root_offset.store(
        payload == nullptr ? 0 : region_->ToOffset(payload),
        std::memory_order_release);
  }

  /// Runs the recovery-time mark-sweep GC (call after any runtime
  /// rollback, with no concurrent mutators).
  GcStats RunRecoveryGc(const TypeRegistry& registry) {
    return RunMarkSweepGc(&allocator_, registry);
  }

  /// Declares recovery complete: needs_recovery() becomes false and
  /// resilience runtimes may initialize. Call after rollback + GC.
  void FinishRecovery() { region_->MarkRecovered(); }

  /// Reserved bytes for the resilience runtime (undo logs, lock words).
  void* runtime_area() const {
    return region_->FromOffset(region_->header()->runtime_area_offset);
  }
  std::size_t runtime_area_size() const {
    return region_->header()->runtime_area_size;
  }

  /// Marks a clean shutdown and syncs to the backing file. The calling
  /// thread's magazines drain to the shared lists first so the on-media
  /// metadata a clean successor session trusts is exact; other threads
  /// drain at their own exit or at allocator destruction (both before
  /// the mapping goes away, which is what the sync cares about).
  void CloseClean() {
    allocator_.FlushCurrentThreadCache();
    region_->MarkCleanShutdown();
  }

  /// msync to the backing file (only needed by non-TSP plans).
  Status SyncToBacking() { return region_->SyncToBacking(); }

  MappedRegion* region() { return region_.get(); }
  const MappedRegion* region() const { return region_.get(); }
  Allocator* allocator() { return &allocator_; }
  const Allocator* allocator() const { return &allocator_; }
  AllocatorStats GetAllocatorStats() const { return allocator_.GetStats(); }

  /// The heap's flight recorder, or nullptr when tracing is off (compile-
  /// or run-time), the runtime area has no trace reservation, or the
  /// mapping is read-only. Use obs::TraceReader for post-crash decoding.
  obs::Recorder* recorder() { return recorder_.get(); }

  ~PersistentHeap();

 private:
  explicit PersistentHeap(std::unique_ptr<MappedRegion> region);

  std::unique_ptr<MappedRegion> region_;
  Allocator allocator_;
  std::unique_ptr<obs::Recorder> recorder_;
  std::uint64_t metrics_source_id_ = 0;
};

}  // namespace tsp::pheap

#endif  // TSP_PHEAP_HEAP_H_
