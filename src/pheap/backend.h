// Copyright 2026 The TSP Authors.
// RegionBackend: where a persistent region's bytes live and how they
// get mapped at their fixed virtual address.
//
// MappedRegion (region.h) owns the *format* of a region — header
// validation, generation/clean-shutdown bookkeeping, slot revalidation.
// The backend owns the *mechanics*: creating the backing store, mapping
// it MAP_SHARED at a caller-fixed address, syncing, removing. Splitting
// the two lets one process host domains on different media:
//
//   PosixFileBackend    any filesystem file; the paper's TSP substrate
//                       (kernel keeps every issued store after a
//                       process crash).
//   DevShmBackend       PosixFileBackend with relative paths resolved
//                       under /dev/shm: kernel-persistent across
//                       process crashes, gone on reboot — the honest
//                       statement of what TSP alone guarantees.
//   AnonTestBackend     anonymous memory with an in-process image kept
//                       across unmap/remap, so unit tests exercise
//                       crash/reopen cycles with no filesystem at all.
//   SimNvmShadowBackend a file-backed region that additionally mirrors
//                       its bytes into a simnvm::SimNvm cache model, so
//                       power-outage crash images (lose-unflushed /
//                       lose-random / TSP-rescue) can be taken of a
//                       *real* heap, not just the mini-KV model.
//
// Raw mmap/MAP_FIXED calls belong in this file's implementation only;
// tsp_lint's raw-mmap rule flags them anywhere else.

#ifndef TSP_PHEAP_BACKEND_H_
#define TSP_PHEAP_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "simnvm/sim_nvm.h"

namespace tsp::pheap {

/// Names the /proc/self/maps entries overlapping [addr, addr+size), so
/// a failed fixed mapping can say *what* occupies the range instead of
/// a bare errno. Returns "" when nothing overlaps (the failure had a
/// different cause) or the maps file is unavailable.
std::string DescribeMappingConflict(std::uintptr_t addr, std::size_t size);

class RegionBackend {
 public:
  virtual ~RegionBackend() = default;

  /// Short stable identifier ("posix-file", "dev-shm", ...).
  virtual const char* name() const = 0;

  /// True when stores to the mapping survive a process crash (the TSP
  /// property). False for process-lifetime test memory.
  virtual bool durable_across_processes() const { return true; }

  /// Maps a user-supplied path to the backend's storage key (e.g.
  /// DevShm prefixes relative paths). Applied once by MappedRegion.
  virtual std::string ResolvePath(const std::string& path) const {
    return path;
  }

  /// Creates the backing store at `path` sized `size` (kAlreadyExists
  /// if present) and maps it read-write at exactly `addr`.
  /// kFailedPrecondition when the range is occupied, with the
  /// conflicting mapping named.
  virtual StatusOr<void*> CreateAndMap(const std::string& path,
                                       std::size_t size,
                                       std::uintptr_t addr) = 0;

  /// Copies the first `n` bytes of the backing store into `out` without
  /// mapping it at a fixed address, and reports the store's total size.
  /// kNotFound when the store does not exist.
  virtual Status PeekHeader(const std::string& path, void* out,
                            std::size_t n, std::uint64_t* store_size) = 0;

  /// Maps the existing backing store at exactly `addr`. `read_only`
  /// maps a private read-only view for diagnostics (never dirties the
  /// store).
  virtual StatusOr<void*> MapExisting(const std::string& path,
                                      std::size_t size, std::uintptr_t addr,
                                      bool read_only) = 0;

  /// Releases a mapping made by CreateAndMap/MapExisting.
  virtual void Unmap(void* base, std::size_t size) = 0;

  /// Pushes modified bytes to the backing store (msync for files).
  virtual Status Sync(void* base, std::size_t size) = 0;

  /// Deletes the backing store.
  virtual Status Remove(const std::string& path) = 0;
};

/// The default backend: an ordinary file mapped MAP_SHARED.
class PosixFileBackend : public RegionBackend {
 public:
  const char* name() const override { return "posix-file"; }
  StatusOr<void*> CreateAndMap(const std::string& path, std::size_t size,
                               std::uintptr_t addr) override;
  Status PeekHeader(const std::string& path, void* out, std::size_t n,
                    std::uint64_t* store_size) override;
  StatusOr<void*> MapExisting(const std::string& path, std::size_t size,
                              std::uintptr_t addr, bool read_only) override;
  void Unmap(void* base, std::size_t size) override;
  Status Sync(void* base, std::size_t size) override;
  Status Remove(const std::string& path) override;
};

/// PosixFileBackend rooted in /dev/shm: relative paths resolve to tmpfs
/// files, which is exactly the persistence TSP guarantees by itself —
/// stores survive the process, not the machine.
class DevShmBackend : public PosixFileBackend {
 public:
  const char* name() const override { return "dev-shm"; }
  std::string ResolvePath(const std::string& path) const override;
};

/// Anonymous memory with an in-process image saved on Unmap and
/// restored on MapExisting, so one process can run create / crash
/// (destroy without clean shutdown) / reopen / recover cycles against
/// pure RAM. The image lives in this backend *instance*: reuse the same
/// shared_ptr across opens. Not durable across processes.
class AnonTestBackend : public RegionBackend {
 public:
  const char* name() const override { return "anon-test"; }
  bool durable_across_processes() const override { return false; }
  StatusOr<void*> CreateAndMap(const std::string& path, std::size_t size,
                               std::uintptr_t addr) override;
  Status PeekHeader(const std::string& path, void* out, std::size_t n,
                    std::uint64_t* store_size) override;
  StatusOr<void*> MapExisting(const std::string& path, std::size_t size,
                              std::uintptr_t addr, bool read_only) override;
  void Unmap(void* base, std::size_t size) override;
  Status Sync(void* base, std::size_t size) override;
  Status Remove(const std::string& path) override;

 private:
  struct Store {
    std::vector<unsigned char> image;  // contents while unmapped
    std::size_t size = 0;
    void* mapped_base = nullptr;  // non-null while mapped
  };

  std::mutex mutex_;
  std::map<std::string, Store> stores_;
};

/// A file-backed region whose bytes are additionally pushed through a
/// simulated write-back cache into simulated NVM (simnvm::SimNvm), so
/// experiments can ask "what would this heap look like after a power
/// outage?" while the heap itself stays a real, mappable file.
///
/// The shadow is *pull-based*: call MirrorRegion (or Sync, which
/// mirrors then flushes) at the points whose cache state you want to
/// model; then TakeCrashImage for the kLoseAllUnflushed /
/// kLoseRandomSubset / kTspRescue views. Offsets in the shadow are
/// region offsets. Mirroring is not thread-safe; quiesce mutators
/// first.
class SimNvmShadowBackend : public PosixFileBackend {
 public:
  struct Options {
    /// Dirty-line capacity of the simulated cache (0 = unbounded).
    std::size_t cache_capacity = 0;
    std::uint64_t eviction_seed = 1;
  };

  SimNvmShadowBackend() = default;
  explicit SimNvmShadowBackend(Options options) : options_(options) {}

  const char* name() const override { return "simnvm-shadow"; }
  StatusOr<void*> CreateAndMap(const std::string& path, std::size_t size,
                               std::uintptr_t addr) override;
  StatusOr<void*> MapExisting(const std::string& path, std::size_t size,
                              std::uintptr_t addr, bool read_only) override;
  Status Sync(void* base, std::size_t size) override;

  /// Pushes the current bytes of [offset, offset+n) of the mapped
  /// region through the simulated cache (stores only; no flush — the
  /// lines stay dirty until FlushRange or an eviction).
  Status MirrorRange(std::uint64_t offset, std::size_t n);
  Status MirrorRegion() { return MirrorRange(0, region_size_); }

  /// The shadow NVM, or nullptr before the first map.
  simnvm::SimNvm* shadow() { return shadow_.get(); }

 private:
  Options options_;
  std::unique_ptr<simnvm::SimNvm> shadow_;
  void* region_base_ = nullptr;
  std::size_t region_size_ = 0;
};

/// The process-wide default PosixFileBackend used when RegionOptions
/// leaves the backend unset.
std::shared_ptr<RegionBackend> DefaultBackend();

}  // namespace tsp::pheap

#endif  // TSP_PHEAP_BACKEND_H_
