#include "pheap/sanitizer.h"

#include <execinfo.h>
#include <signal.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/race_detector.h"
#include "common/logging.h"
#include "pheap/allocator.h"
#include "pheap/layout.h"

namespace tsp::pheap {

namespace tspsan_internal {
std::atomic<bool> g_active{false};
thread_local int g_ocs_depth = 0;
}  // namespace tspsan_internal

namespace {

using tspsan_internal::g_active;
using tspsan_internal::g_ocs_depth;

struct ExemptRange {
  std::uintptr_t start;
  std::uintptr_t end;
  const char* domain;
};

// All sanitizer state. The SIGSEGV handler reads only fields that are
// immutable between Enable and Disable (region/base/end pointers,
// registry, exit code), never the mutex-guarded page maps: a fault on a
// page with an open window or an exempt page cannot happen (those pages
// are PROT_READ|PROT_WRITE), so every arena fault is a violation.
struct State {
  std::mutex mutex;
  MappedRegion* region = nullptr;
  const TypeRegistry* registry = nullptr;
  int violation_exit_code = 0;
  std::uintptr_t protect_start = 0;  // first protected byte (page-aligned)
  std::uintptr_t protect_end = 0;    // one past the last protected byte
  std::size_t page_size = 4096;
  /// Open-window refcount per page (keyed by page base address).
  std::unordered_map<std::uintptr_t, int> window_pages;
  /// Pages permanently unprotected for §4.1 non-blocking domains.
  std::unordered_set<std::uintptr_t> exempt_pages;
  std::vector<ExemptRange> exempt_ranges;
  struct sigaction old_segv_action;
  std::atomic<std::uint64_t> windows_opened{0};
};

State& GetState() {
  static State state;
  return state;
}

std::uintptr_t PageOf(const State& state, std::uintptr_t addr) {
  return addr & ~(static_cast<std::uintptr_t>(state.page_size) - 1);
}

void ProtectPages(std::uintptr_t first_page, std::uintptr_t last_page,
                  int prot) {
  const std::size_t len =
      last_page - first_page + GetState().page_size;
  if (mprotect(reinterpret_cast<void*>(first_page), len, prot) != 0) {
    TSP_LOG(FATAL) << "TSPSan: mprotect failed: " << std::strerror(errno);
  }
}

/// Best-effort description of the arena object containing `offset`:
/// walks the block headers from the arena start (blocks are carved
/// contiguously below the bump pointer). Returns false if the walk hits
/// a torn header before reaching `offset`.
bool DescribeBlockAt(const State& state, std::uint64_t offset, char* buf,
                     std::size_t buf_len) {
  const RegionHeader* header = state.region->header();
  const std::uint64_t bump =
      header->bump_offset.load(std::memory_order_relaxed);
  std::uint64_t cursor = header->arena_offset;
  while (cursor + sizeof(BlockHeader) <= bump) {
    const auto* block = static_cast<const BlockHeader*>(
        state.region->FromOffset(cursor));
    const std::uint64_t size = block->size();  // mask the owner tag
    if (size == 0 || size % kGranule != 0 || cursor + size > bump ||
        Allocator::SizeClassOf(size) < 0) {
      return false;  // torn or foreign bytes; stop the walk
    }
    if (offset < cursor + size) {
      const char* type_name = "<untyped leaf>";
      const char* block_state =
          block->magic == BlockHeader::kAllocatedMagic  ? "allocated"
          : block->magic == BlockHeader::kFreeMagic     ? "FREE"
                                                        : "CORRUPT-MAGIC";
      if (block->type_id != 0) {
        type_name = "<unregistered type>";
        if (state.registry != nullptr) {
          const TypeInfo* info = state.registry->Find(block->type_id);
          if (info != nullptr) type_name = info->name.c_str();
        }
      }
      std::snprintf(buf, buf_len,
                    "%s block @ offset %" PRIu64 " size %" PRIu64
                    " type_id 0x%x (%s), store at +%" PRIu64,
                    block_state, cursor, size, block->type_id, type_name,
                    offset - cursor);
      return true;
    }
    cursor += size;
  }
  return false;
}

void ReportViolationAndDie(void* fault_addr) {
  State& state = GetState();
  // Everything below is best-effort: we are inside a SIGSEGV handler
  // and about to abort, so strict async-signal-safety is relaxed in
  // exchange for a useful diagnostic (same tradeoff ASan makes).
  char line[512];
  const auto addr = reinterpret_cast<std::uintptr_t>(fault_addr);
  const std::uint64_t offset = state.region->ToOffset(fault_addr);
  int len = std::snprintf(
      line, sizeof(line),
      "\n=== TSPSan: unlogged persistent store ===\n"
      "  address:   %p (region offset %" PRIu64 ")\n"
      "  ocs state: %s\n",
      fault_addr, offset,
      g_ocs_depth > 0 ? "INSIDE an outermost critical section (depth > 0): "
                        "this store bypassed the undo log and would break "
                        "rollback"
                      : "outside any critical section: raw stores here are "
                        "not rolled back; route them through the heap/store "
                        "API anyway");
  (void)!write(STDERR_FILENO, line, static_cast<std::size_t>(len));

  char desc[384];
  if (DescribeBlockAt(state, offset, desc, sizeof(desc))) {
    len = std::snprintf(line, sizeof(line), "  object:    %s\n", desc);
    (void)!write(STDERR_FILENO, line, static_cast<std::size_t>(len));
  }
  for (const ExemptRange& range : state.exempt_ranges) {
    if (addr >= range.start && addr < range.end) {
      len = std::snprintf(
          line, sizeof(line),
          "  note:      address is inside non-blocking domain '%s' but its "
          "page was re-protected; this should not happen\n",
          range.domain);
      (void)!write(STDERR_FILENO, line, static_cast<std::size_t>(len));
    }
  }
  len = std::snprintf(
      line, sizeof(line),
      "  fix:       use AtlasThread::Store/StoreBytes (logged), or register "
      "the object's range as a non-blocking domain if it is §4.1 lock-free "
      "code\n  backtrace:\n");
  (void)!write(STDERR_FILENO, line, static_cast<std::size_t>(len));

  void* frames[32];
  const int depth = backtrace(frames, 32);
  backtrace_symbols_fd(frames, depth, STDERR_FILENO);

  if (state.violation_exit_code != 0) _exit(state.violation_exit_code);
  abort();
}

void SegvHandler(int signo, siginfo_t* info, void* context) {
  State& state = GetState();
  const auto addr = reinterpret_cast<std::uintptr_t>(info->si_addr);
  if (!g_active.load(std::memory_order_acquire) ||
      addr < state.protect_start || addr >= state.protect_end) {
    // Not ours: restore the previous disposition and re-raise by
    // returning (the faulting instruction re-executes).
    sigaction(SIGSEGV, &state.old_segv_action, nullptr);
    if (state.old_segv_action.sa_handler == SIG_DFL ||
        state.old_segv_action.sa_handler == SIG_IGN) {
      return;  // default action fires on re-execution
    }
    // Chain a previous custom handler directly.
    if (state.old_segv_action.sa_flags & SA_SIGINFO) {
      state.old_segv_action.sa_sigaction(signo, info, context);
    } else {
      state.old_segv_action.sa_handler(signo);
    }
    return;
  }
  // A protected-arena fault. Reads never fault on PROT_READ pages, so
  // this is a write outside every write window: a contract violation.
  ReportViolationAndDie(info->si_addr);
}

}  // namespace

Status TspSanitizer::Enable(MappedRegion* region, const Options& options) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (g_active.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("TSPSan is already enabled");
  }
  if (region->read_only()) {
    return Status::InvalidArgument(
        "TSPSan needs a writable region (read-only opens cannot take "
        "write windows)");
  }
  if (region->opened_after_crash()) {
    return Status::FailedPrecondition(
        "heap needs recovery; enable TSPSan after rollback + GC (recovery "
        "itself is a blessed writer)");
  }

  state.region = region;
  state.registry = options.registry;
  state.violation_exit_code = options.violation_exit_code;
  state.page_size = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  const RegionHeader* header = region->header();
  const auto base = reinterpret_cast<std::uintptr_t>(region->base());
  // Protect only pages fully inside the arena; the header and runtime
  // area (undo log, allocator metadata in the control block) are the
  // resilience runtime's own state and stay writable.
  const std::uintptr_t arena_start = base + header->arena_offset;
  state.protect_start =
      (arena_start + state.page_size - 1) &
      ~(static_cast<std::uintptr_t>(state.page_size) - 1);
  state.protect_end = base + region->size();
  state.window_pages.clear();
  state.exempt_pages.clear();
  state.exempt_ranges.clear();
  state.windows_opened.store(0, std::memory_order_relaxed);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_sigaction = SegvHandler;
  action.sa_flags = SA_SIGINFO;
  sigemptyset(&action.sa_mask);
  if (sigaction(SIGSEGV, &action, &state.old_segv_action) != 0) {
    return Status::IoError(std::string("sigaction: ") +
                           std::strerror(errno));
  }
  if (mprotect(reinterpret_cast<void*>(state.protect_start),
               state.protect_end - state.protect_start, PROT_READ) != 0) {
    sigaction(SIGSEGV, &state.old_segv_action, nullptr);
    return Status::IoError(std::string("mprotect: ") +
                           std::strerror(errno));
  }
  g_active.store(true, std::memory_order_release);
  return Status::OK();
}

void TspSanitizer::Disable() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (!g_active.load(std::memory_order_relaxed)) return;
  g_active.store(false, std::memory_order_release);
  mprotect(reinterpret_cast<void*>(state.protect_start),
           state.protect_end - state.protect_start,
           PROT_READ | PROT_WRITE);
  sigaction(SIGSEGV, &state.old_segv_action, nullptr);
  state.region = nullptr;
  state.registry = nullptr;
  state.window_pages.clear();
  state.exempt_pages.clear();
  state.exempt_ranges.clear();
}

bool TspSanitizer::enabled_by_env() {
  const char* value = std::getenv("TSP_SANITIZE_PERSIST");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

void TspSanitizer::RegisterNonBlockingRange(const void* p, std::size_t n,
                                            const char* domain) {
  // TSPRace shares the §4.1 exemption registry: mirror every range
  // before the active() gate below — structures register during session
  // open, before either checker is armed, and TSPRace records ranges
  // unconditionally so it can apply them at Enable.
  analysis::RaceDetector::RegisterNonBlockingRange(p, n, domain);
  if (!active() || n == 0) return;
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (!g_active.load(std::memory_order_relaxed)) return;
  const auto start = reinterpret_cast<std::uintptr_t>(p);
  state.exempt_ranges.push_back({start, start + n, domain});
  const std::uintptr_t first = PageOf(state, start);
  const std::uintptr_t last = PageOf(state, start + n - 1);
  for (std::uintptr_t page = first; page <= last;
       page += state.page_size) {
    if (page < state.protect_start || page >= state.protect_end) continue;
    if (state.exempt_pages.insert(page).second) {
      auto it = state.window_pages.find(page);
      if (it != state.window_pages.end()) {
        // Already unprotected by an open window; drop the refcount entry
        // so the window's close leaves the now-exempt page writable.
        state.window_pages.erase(it);
      } else {
        ProtectPages(page, page, PROT_READ | PROT_WRITE);
      }
    }
  }
}

std::uint64_t TspSanitizer::windows_opened() {
  return GetState().windows_opened.load(std::memory_order_relaxed);
}

void TspSanitizer::OpenWindow(const void* p, std::size_t n) {
  if (n == 0) return;
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (!g_active.load(std::memory_order_relaxed)) return;
  state.windows_opened.fetch_add(1, std::memory_order_relaxed);
  const auto start = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t first = PageOf(state, start);
  const std::uintptr_t last = PageOf(state, start + n - 1);
  for (std::uintptr_t page = first; page <= last;
       page += state.page_size) {
    if (page < state.protect_start || page >= state.protect_end) continue;
    if (state.exempt_pages.count(page) != 0) continue;
    if (++state.window_pages[page] == 1) {
      ProtectPages(page, page, PROT_READ | PROT_WRITE);
    }
  }
}

void TspSanitizer::CloseWindow(const void* p, std::size_t n) {
  if (n == 0) return;
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (!g_active.load(std::memory_order_relaxed)) return;
  const auto start = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t first = PageOf(state, start);
  const std::uintptr_t last = PageOf(state, start + n - 1);
  for (std::uintptr_t page = first; page <= last;
       page += state.page_size) {
    if (page < state.protect_start || page >= state.protect_end) continue;
    if (state.exempt_pages.count(page) != 0) continue;
    auto it = state.window_pages.find(page);
    if (it == state.window_pages.end()) continue;  // exempted mid-window
    if (--it->second == 0) {
      state.window_pages.erase(it);
      ProtectPages(page, page, PROT_READ);
    }
  }
}

}  // namespace tsp::pheap
