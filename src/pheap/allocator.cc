#include "pheap/allocator.h"

#include "common/logging.h"
#include "pheap/sanitizer.h"

namespace tsp::pheap {
namespace {

// Block sizes (header included). Fine-grained ~1.5x spacing up to 64 KiB,
// power-of-two beyond. Exactly Allocator::kNumSizeClasses entries.
constexpr std::size_t kClassBlockSizes[] = {
    32,        48,        64,        96,        128,      192,      256,
    384,       512,       768,       1024,      1536,     2048,     3072,
    4096,      6144,      8192,      12288,     16384,    24576,    32768,
    49152,     65536,     131072,    262144,    524288,   1048576,  2097152,
    4194304,   8388608,   16777216,  33554432,  67108864, 134217728,
    268435456,
};
static_assert(sizeof(kClassBlockSizes) / sizeof(kClassBlockSizes[0]) ==
              Allocator::kNumSizeClasses);
static_assert(Allocator::kNumSizeClasses <= kMaxSizeClasses);

}  // namespace

std::size_t Allocator::MaxPayloadSize() {
  return kClassBlockSizes[kNumSizeClasses - 1] - sizeof(BlockHeader);
}

Allocator::Allocator(MappedRegion* region)
    : region_(region), header_(region->header()) {}

std::size_t Allocator::BlockSizeForPayload(std::size_t payload_size) {
  const std::size_t needed = payload_size + sizeof(BlockHeader);
  for (std::size_t block_size : kClassBlockSizes) {
    if (block_size >= needed) return block_size;
  }
  return 0;
}

int Allocator::SizeClassOf(std::size_t block_size) {
  // Binary search over the sorted class table.
  int lo = 0, hi = kNumSizeClasses - 1;
  while (lo <= hi) {
    const int mid = (lo + hi) / 2;
    if (kClassBlockSizes[mid] == block_size) return mid;
    if (kClassBlockSizes[mid] < block_size) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return -1;
}

std::size_t Allocator::ClassBlockSize(int index) {
  TSP_DCHECK_GE(index, 0);
  TSP_DCHECK_LT(static_cast<std::size_t>(index), kNumSizeClasses);
  return kClassBlockSizes[index];
}

void* Allocator::Alloc(std::size_t payload_size, std::uint32_t type_id) {
  const std::size_t block_size = BlockSizeForPayload(payload_size);
  if (block_size == 0) return nullptr;
  const int size_class = SizeClassOf(block_size);
  TSP_DCHECK_GE(size_class, 0);

  std::uint64_t offset = PopFromList(size_class);
  if (offset == 0) {
    // Bump allocation. A crash between fetch_add and header
    // initialization leaks the reserved bytes; the recovery GC reclaims
    // them because nothing reachable covers the gap.
    const std::uint64_t arena_end =
        header_->arena_offset + header_->arena_size;
    offset = header_->bump_offset.fetch_add(block_size,
                                            std::memory_order_relaxed);
    if (offset + block_size > arena_end) {
      // Exhausted. Give the (unusable, partially out-of-range) reserved
      // bytes back by capping the published bump at arena_end so stats
      // stay sane; concurrent racers may also have overshot, which is
      // benign — the arena is simply full.
      return nullptr;
    }
  }

  auto* block = static_cast<BlockHeader*>(region_->FromOffset(offset));
  // Allocator metadata writes are blessed under TSPSan: headers are
  // advisory (recovery rebuilds them) and never undo-logged.
  ScopedWriteWindow window(block, sizeof(BlockHeader));
  block->magic = BlockHeader::kAllocatedMagic;
  block->type_id = type_id;
  block->block_size = block_size;
  header_->total_allocs.fetch_add(1, std::memory_order_relaxed);
  return block + 1;
}

void Allocator::Free(void* payload) {
  TSP_CHECK(payload != nullptr);
  TSP_CHECK(region_->Contains(payload));
  BlockHeader* block = HeaderOf(payload);
  TSP_CHECK_EQ(block->magic, BlockHeader::kAllocatedMagic)
      << "Free of unallocated or corrupt block";
  const int size_class = SizeClassOf(block->block_size);
  TSP_CHECK_GE(size_class, 0) << "corrupt block size";
  ScopedWriteWindow window(block, sizeof(BlockHeader));
  block->magic = BlockHeader::kFreeMagic;
  header_->total_frees.fetch_add(1, std::memory_order_relaxed);
  PushToList(size_class, region_->ToOffset(block));
}

void Allocator::PushToList(int size_class, std::uint64_t block_offset) {
  auto* payload = static_cast<FreeBlockPayload*>(
      region_->FromOffset(block_offset + sizeof(BlockHeader)));
  ScopedWriteWindow window(payload, sizeof(FreeBlockPayload));
  std::atomic<TaggedOffset>& head = header_->free_lists[size_class];
  TaggedOffset old_head = head.load(std::memory_order_acquire);
  for (;;) {
    payload->next_offset = OffsetOf(old_head);
    const TaggedOffset new_head =
        MakeTagged(TagOf(old_head) + 1, block_offset);
    if (head.compare_exchange_weak(old_head, new_head,
                                   std::memory_order_release,
                                   std::memory_order_acquire)) {
      return;
    }
  }
}

std::uint64_t Allocator::PopFromList(int size_class) {
  std::atomic<TaggedOffset>& head = header_->free_lists[size_class];
  TaggedOffset old_head = head.load(std::memory_order_acquire);
  for (;;) {
    const std::uint64_t offset = OffsetOf(old_head);
    if (offset == 0) return 0;
    const auto* payload = static_cast<const FreeBlockPayload*>(
        region_->FromOffset(offset + sizeof(BlockHeader)));
    const std::uint64_t next = payload->next_offset;
    const TaggedOffset new_head = MakeTagged(TagOf(old_head) + 1, next);
    if (head.compare_exchange_weak(old_head, new_head,
                                   std::memory_order_acquire,
                                   std::memory_order_acquire)) {
      return offset;
    }
  }
}

AllocatorStats Allocator::GetStats() const {
  AllocatorStats stats;
  stats.total_allocs = header_->total_allocs.load(std::memory_order_relaxed);
  stats.total_frees = header_->total_frees.load(std::memory_order_relaxed);
  stats.bump_offset = header_->bump_offset.load(std::memory_order_relaxed);
  stats.arena_end = header_->arena_offset + header_->arena_size;
  return stats;
}

void Allocator::ResetMetadata(std::uint64_t bump_offset) {
  TSP_CHECK_GE(bump_offset, header_->arena_offset);
  TSP_CHECK_LE(bump_offset, header_->arena_offset + header_->arena_size);
  for (auto& head : header_->free_lists) {
    head.store(0, std::memory_order_relaxed);
  }
  header_->bump_offset.store(bump_offset, std::memory_order_relaxed);
}

void Allocator::PushFreeBlock(std::uint64_t offset, std::size_t block_size) {
  const int size_class = SizeClassOf(block_size);
  TSP_CHECK_GE(size_class, 0);
  auto* block = static_cast<BlockHeader*>(region_->FromOffset(offset));
  ScopedWriteWindow window(block, sizeof(BlockHeader));
  block->magic = BlockHeader::kFreeMagic;
  block->type_id = 0;
  block->block_size = block_size;
  PushToList(size_class, offset);
}

}  // namespace tsp::pheap
