#include "pheap/allocator.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "analysis/race_hooks.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "pheap/sanitizer.h"

namespace tsp::pheap {
namespace {

// Block sizes (header included). Fine-grained ~1.5x spacing up to 64 KiB,
// power-of-two beyond. Exactly Allocator::kNumSizeClasses entries.
constexpr std::size_t kClassBlockSizes[] = {
    32,        48,        64,        96,        128,      192,      256,
    384,       512,       768,       1024,      1536,     2048,     3072,
    4096,      6144,      8192,      12288,     16384,    24576,    32768,
    49152,     65536,     131072,    262144,    524288,   1048576,  2097152,
    4194304,   8388608,   16777216,  33554432,  67108864, 134217728,
    268435456,
};
static_assert(sizeof(kClassBlockSizes) / sizeof(kClassBlockSizes[0]) ==
              Allocator::kNumSizeClasses);
static_assert(Allocator::kNumSizeClasses <= kMaxSizeClasses);
static_assert(Allocator::kNumMagazineClasses > 0 &&
              static_cast<std::size_t>(Allocator::kNumMagazineClasses) <=
                  Allocator::kNumSizeClasses);
// Magazine eligibility boundary: everything the magazines cache is a
// small block (the boundary itself is asserted so a class-table edit
// cannot silently turn 128 MiB blocks into per-thread cached ones).
static_assert(kClassBlockSizes[Allocator::kNumMagazineClasses - 1] == 4096);

// O(1) class lookup for small sizes: granule count → smallest class
// that fits. The allocation fast path resolves the class three times
// per alloc/free pair (round up, classify, classify on free), so the
// binary search is replaced by one table load for everything the
// magazines serve.
constexpr std::size_t kSmallLookupLimit = 4096;
constexpr auto kSmallClassByGranule = [] {
  std::array<std::uint8_t, kSmallLookupLimit / kGranule + 1> table{};
  for (std::size_t g = 0; g < table.size(); ++g) {
    std::uint8_t size_class = 0;
    while (kClassBlockSizes[size_class] < g * kGranule) ++size_class;
    table[g] = size_class;
  }
  return table;
}();

std::atomic<std::uint64_t> g_next_allocator_id{1};

/// Live-allocator registry. Thread-exit drains consult it so a TLS
/// destructor never touches an allocator that died before the thread
/// did. Heap-allocated and intentionally leaked: TLS destructors of
/// exiting threads may run during process teardown, after function-
/// local statics would have been destroyed.
struct LiveRegistry {
  std::mutex mutex;
  std::vector<std::pair<std::uint64_t, Allocator*>> live;
};

LiveRegistry& Registry() {
  static LiveRegistry* registry = new LiveRegistry();
  return *registry;
}

Allocator* FindLiveLocked(LiveRegistry& registry, std::uint64_t id) {
  for (const auto& [live_id, allocator] : registry.live) {
    if (live_id == id) return allocator;
  }
  return nullptr;
}

/// Non-atomic increment of a counter that concurrent GetStats readers
/// may load: a relaxed store keeps the pair data-race-free without the
/// cost of a locked RMW (the counter is written by its owner only).
inline void Bump(std::atomic<std::uint64_t>& counter, std::uint64_t n = 1) {
  counter.store(counter.load(std::memory_order_relaxed) + n,
                std::memory_order_relaxed);
}

}  // namespace

/// DRAM-resident per-thread allocation cache: one magazine of block
/// offsets per small size class, plus volatile stat counters. Entirely
/// advisory — nothing in here is ever needed (or read) by recovery; a
/// crash simply forgets it and the recovery GC reclaims the parked
/// blocks as unreachable space.
class ThreadCache {
 public:
  ThreadCache(Allocator* allocator, std::uint32_t slot)
      : allocator_(allocator),
        slot_(slot),
        owner_tag_(static_cast<std::uint16_t>(slot + 1)),
        epoch_(allocator->cache_epoch()) {}

  ThreadCache(const ThreadCache&) = delete;
  ThreadCache& operator=(const ThreadCache&) = delete;

  void* Alloc(int size_class, std::size_t block_size, std::uint32_t type_id) {
    CheckEpoch();
    Magazine& magazine = mags_[size_class];
    if (TSP_PREDICT_FALSE(magazine.count == 0)) {
      Refill(size_class, block_size);
      if (magazine.count == 0) {
        // Arena exhausted (or everything parked elsewhere): last-resort
        // single-block attempt against the shared structures.
        return allocator_->AllocShared(size_class, block_size, type_id,
                                       owner_tag_);
      }
    }
    const std::uint64_t offset = magazine.slots[--magazine.count];
    auto* block =
        static_cast<BlockHeader*>(allocator_->region_->FromOffset(offset));
    // Allocator metadata writes are blessed under TSPSan: headers are
    // advisory (recovery rebuilds them) and never undo-logged.
    ScopedWriteWindow window(block, sizeof(BlockHeader));
    block->magic = BlockHeader::kAllocatedMagic;
    block->type_id = type_id;
    block->block_size = BlockHeader::PackSize(block_size, owner_tag_);
    Bump(magazine_allocs_);
    return block + 1;
  }

  /// Drain-and-unregister via the owning allocator (the TLS destructor
  /// below cannot call the private Allocator::RetireCache itself).
  void Retire() { allocator_->RetireCache(this); }

  void Free(int size_class, std::uint64_t offset, std::uint16_t owner_tag) {
    CheckEpoch();
    if (owner_tag != 0 && owner_tag != owner_tag_ &&
        allocator_->RemoteFreeTo(static_cast<std::uint32_t>(owner_tag - 1),
                                 offset)) {
      Bump(remote_frees_);
      return;
    }
    Magazine& magazine = mags_[size_class];
    while (TSP_PREDICT_FALSE(magazine.count >=
                             allocator_->magazine_capacity_)) {
      DrainHalf(size_class);
    }
    magazine.slots[magazine.count++] = offset;
    Bump(magazine_frees_);
  }

 private:
  friend class Allocator;

  struct Magazine {
    std::uint32_t count = 0;
    std::uint64_t slots[Allocator::kMagazineCapacity];
  };

  /// The GC rebuilt the shared metadata under us: every parked offset
  /// may now alias a rebuilt free block, so the only safe move is to
  /// forget them all (the GC already accounted those bytes).
  void CheckEpoch() {
    const std::uint64_t epoch = allocator_->cache_epoch();
    if (TSP_PREDICT_FALSE(epoch != epoch_)) {
      DiscardAll();
      epoch_ = epoch;
    }
  }

  void DiscardAll() {
    for (Magazine& magazine : mags_) magazine.count = 0;
    Bump(discards_);
  }

  /// Refill order: own remote-free inbox first (free, uncontended),
  /// then a batch pop from the shared list (one CAS), then a batch
  /// carve off the bump pointer (one fetch_add).
  void Refill(int size_class, std::size_t block_size) {
    ReclaimInbox();
    Magazine& magazine = mags_[size_class];
    if (magazine.count > 0) return;
    const std::size_t want =
        std::max<std::size_t>(1, allocator_->magazine_capacity_ / 2);
    std::size_t got =
        allocator_->BatchPopFromList(size_class, want, magazine.slots);
    if (got > 0) {
      magazine.count = static_cast<std::uint32_t>(got);
      Bump(refill_batches_);
      TSP_TRACE_EVENT(trace_, obs::EventCode::kMagazineRefill,
                      static_cast<std::uint64_t>(size_class), got);
      return;
    }
    got = allocator_->BatchCarve(block_size, want, magazine.slots);
    if (got > 0) {
      magazine.count = static_cast<std::uint32_t>(got);
      Bump(carve_batches_);
      TSP_TRACE_EVENT(trace_, obs::EventCode::kMagazineRefill,
                      static_cast<std::uint64_t>(size_class), got);
    }
  }

  /// Swaps the whole inbox chain out with one exchange and parks the
  /// blocks (they arrive mixed-class); magazines that are already full
  /// pass the overflow straight to the shared lists in per-class
  /// chains.
  void ReclaimInbox() {
    Allocator::RemoteSlot& slot = allocator_->remote_slots_[slot_];
    TaggedOffset head = slot.head.load(std::memory_order_relaxed);
    if (OffsetOf(head) == 0) return;
    head = slot.head.exchange(MakeTagged(TagOf(head) + 1, 0),
                              std::memory_order_acquire);
    std::uint64_t cur = OffsetOf(head);
    std::uint64_t overflow_first[Allocator::kNumMagazineClasses] = {};
    std::uint64_t overflow_prev[Allocator::kNumMagazineClasses] = {};
    std::uint64_t overflow_count[Allocator::kNumMagazineClasses] = {};
    std::uint64_t reclaimed = 0;
    while (cur != 0) {
      auto* payload = static_cast<FreeBlockPayload*>(
          allocator_->region_->FromOffset(cur + sizeof(BlockHeader)));
      const std::uint64_t next = payload->next_offset;
      const auto* block = static_cast<const BlockHeader*>(
          allocator_->region_->FromOffset(cur));
      const int size_class = Allocator::SizeClassOf(block->size());
      TSP_CHECK(size_class >= 0 &&
                size_class < Allocator::kNumMagazineClasses)
          << "corrupt block in remote-free inbox";
      Magazine& magazine = mags_[size_class];
      if (magazine.count < allocator_->magazine_capacity_) {
        magazine.slots[magazine.count++] = cur;
      } else {
        // Prepend to this class's overflow chain (links are scratch
        // bytes of free blocks; blessed writes).
        ScopedWriteWindow window(payload, sizeof(FreeBlockPayload));
        payload->next_offset = overflow_first[size_class];
        if (overflow_first[size_class] == 0) overflow_prev[size_class] = cur;
        overflow_first[size_class] = cur;
        ++overflow_count[size_class];
      }
      ++reclaimed;
      cur = next;
    }
    for (int c = 0; c < Allocator::kNumMagazineClasses; ++c) {
      if (overflow_count[c] == 0) continue;
      allocator_->PushChainToList(c, overflow_first[c], overflow_prev[c],
                                  overflow_count[c]);
      Bump(drain_batches_);
    }
    Bump(remote_reclaims_, reclaimed);
  }

  /// Returns the older half of the magazine to the shared list as one
  /// pre-linked chain (one CAS).
  void DrainHalf(int size_class) {
    Magazine& magazine = mags_[size_class];
    TSP_DCHECK_GT(magazine.count, 0u);
    const std::uint32_t n = std::max(1u, magazine.count / 2);
    for (std::uint32_t i = 0; i + 1 < n; ++i) {
      auto* payload = static_cast<FreeBlockPayload*>(
          allocator_->region_->FromOffset(magazine.slots[i] +
                                          sizeof(BlockHeader)));
      ScopedWriteWindow window(payload, sizeof(FreeBlockPayload));
      payload->next_offset = magazine.slots[i + 1];
    }
    allocator_->PushChainToList(size_class, magazine.slots[0],
                                magazine.slots[n - 1], n);
    magazine.count -= n;
    std::memmove(magazine.slots, magazine.slots + n,
                 magazine.count * sizeof(magazine.slots[0]));
    Bump(drain_batches_);
    TSP_TRACE_EVENT(trace_, obs::EventCode::kMagazineDrain,
                    static_cast<std::uint64_t>(size_class), n);
  }

  /// Orderly retirement: every parked block goes back to the shared
  /// lists. With a stale epoch the parked offsets belong to the GC and
  /// are forgotten instead.
  void DrainAll() {
    if (epoch_ != allocator_->cache_epoch()) {
      DiscardAll();
      return;
    }
    allocator_->DrainRemoteSlot(slot_);
    for (int c = 0; c < Allocator::kNumMagazineClasses; ++c) {
      Magazine& magazine = mags_[c];
      if (magazine.count == 0) continue;
      for (std::uint32_t i = 0; i + 1 < magazine.count; ++i) {
        auto* payload = static_cast<FreeBlockPayload*>(
            allocator_->region_->FromOffset(magazine.slots[i] +
                                            sizeof(BlockHeader)));
        ScopedWriteWindow window(payload, sizeof(FreeBlockPayload));
        payload->next_offset = magazine.slots[i + 1];
      }
      allocator_->PushChainToList(c, magazine.slots[0],
                                  magazine.slots[magazine.count - 1],
                                  magazine.count);
      magazine.count = 0;
      Bump(drain_batches_);
    }
  }

  Allocator* allocator_;
  std::uint32_t slot_;
  std::uint16_t owner_tag_;
  std::uint64_t epoch_;
  /// Flight-recorder handle for this thread (null when tracing is off).
  /// Bound at registration; refill/drain are the only traced paths —
  /// per-block events would blow the ring and the overhead budget.
  obs::TraceWriter* trace_ = nullptr;
  Magazine mags_[Allocator::kNumMagazineClasses];

  // Stat counters: written by the owning thread, read concurrently by
  // GetStats (relaxed loads; see Bump above).
  std::atomic<std::uint64_t> magazine_allocs_{0};
  std::atomic<std::uint64_t> magazine_frees_{0};
  std::atomic<std::uint64_t> refill_batches_{0};
  std::atomic<std::uint64_t> carve_batches_{0};
  std::atomic<std::uint64_t> drain_batches_{0};
  std::atomic<std::uint64_t> remote_frees_{0};
  std::atomic<std::uint64_t> remote_reclaims_{0};
  std::atomic<std::uint64_t> discards_{0};
  std::atomic<std::uint64_t> batch_pop_retries_{0};
};

namespace {

/// Per-thread bindings (allocator instance id → cache). The wrapper's
/// destructor drains every cache whose allocator is still alive, so an
/// orderly thread exit parks nothing (a crashed thread never runs it —
/// which is fine, that is what the recovery GC is for).
struct TlsCaches {
  struct Binding {
    std::uint64_t instance_id;
    ThreadCache* cache;  // nullptr: slots were exhausted, use shared path
  };
  std::vector<Binding> bindings;

  ~TlsCaches();
};

/// One-entry fast binding in front of the vector. Trivially
/// destructible, so access compiles to a plain TLS load — no
/// init-guard call on the allocation fast path (unlike tls_caches,
/// whose registered destructor makes every access go through the
/// thread-local wrapper function).
struct FastBinding {
  std::uint64_t instance_id;
  ThreadCache* cache;
};

thread_local TlsCaches tls_caches;
thread_local FastBinding tls_fast_binding{0, nullptr};

TlsCaches::~TlsCaches() {
  // The fast binding aliases an entry below; clear it first so a later
  // TLS destructor that still allocates misses and re-resolves.
  tls_fast_binding = {0, nullptr};
  LiveRegistry& registry = Registry();
  for (const Binding& binding : bindings) {
    if (binding.cache == nullptr) continue;
    std::lock_guard<std::mutex> lock(registry.mutex);
    Allocator* allocator = FindLiveLocked(registry, binding.instance_id);
    if (allocator != nullptr) binding.cache->Retire();
    // A dead allocator already drained (or discarded) this cache and
    // owns its memory; never dereference the stale pointer.
  }
}

}  // namespace

std::size_t Allocator::MaxPayloadSize() {
  return kClassBlockSizes[kNumSizeClasses - 1] - sizeof(BlockHeader);
}

Allocator::Allocator(MappedRegion* region)
    : region_(region),
      header_(region->header()),
      instance_id_(g_next_allocator_id.fetch_add(1)),
      magazines_enabled_(true),
      magazine_capacity_(kMagazineCapacity),
      remote_slots_(new RemoteSlot[kMaxThreadCaches]) {
  // Diagnostics attach read-only regions; magazines must never be
  // created there (draining one would write to the mapping).
  if (region->read_only()) magazines_enabled_ = false;
  if (const char* env = std::getenv("TSP_ALLOC_MAGAZINES");
      env != nullptr && std::strcmp(env, "0") == 0) {
    magazines_enabled_ = false;
  }
  if (const char* env = std::getenv("TSP_ALLOC_MAGAZINE_CAP");
      env != nullptr && env[0] != '\0') {
    set_magazine_capacity(
        static_cast<std::uint32_t>(std::strtoul(env, nullptr, 0)));
  }
  LiveRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.live.emplace_back(instance_id_, this);
}

Allocator::~Allocator() {
  {
    LiveRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    auto& live = registry.live;
    for (auto it = live.begin(); it != live.end(); ++it) {
      if (it->first == instance_id_) {
        live.erase(it);
        break;
      }
    }
  }
  // Quiesced by contract (destroying the heap while threads allocate
  // is already undefined); surviving caches — including other threads'
  // — drain to the shared lists so the on-media free lists are exact.
  std::lock_guard<std::mutex> lock(cache_mutex_);
  for (auto& cache : caches_) RetireCacheLocked(cache.get());
  caches_.clear();
  // Stale TLS bindings in other threads stay behind; they are keyed by
  // instance id and will never match a future allocator.
}

void Allocator::set_magazines_enabled(bool enabled) {
  magazines_enabled_ = enabled;
}

void Allocator::set_magazine_capacity(std::uint32_t capacity) {
  magazine_capacity_ = std::clamp<std::uint32_t>(
      capacity, 2, static_cast<std::uint32_t>(kMagazineCapacity));
}

std::size_t Allocator::BlockSizeForPayload(std::size_t payload_size) {
  const std::size_t needed = payload_size + sizeof(BlockHeader);
  if (TSP_PREDICT_TRUE(needed <= kSmallLookupLimit)) {
    return kClassBlockSizes[kSmallClassByGranule[(needed + kGranule - 1) /
                                                 kGranule]];
  }
  for (std::size_t block_size : kClassBlockSizes) {
    if (block_size >= needed) return block_size;
  }
  return 0;
}

int Allocator::SizeClassOf(std::size_t block_size) {
  if (TSP_PREDICT_TRUE(block_size <= kSmallLookupLimit)) {
    // Exact-match semantics preserved: a size that is not a real class
    // size (e.g. a scribbled header) still classifies as -1.
    const int size_class =
        kSmallClassByGranule[(block_size + kGranule - 1) / kGranule];
    return kClassBlockSizes[size_class] == block_size ? size_class : -1;
  }
  // Binary search over the sorted class table.
  int lo = 0, hi = kNumSizeClasses - 1;
  while (lo <= hi) {
    const int mid = (lo + hi) / 2;
    if (kClassBlockSizes[mid] == block_size) return mid;
    if (kClassBlockSizes[mid] < block_size) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return -1;
}

std::size_t Allocator::ClassBlockSize(int index) {
  TSP_DCHECK_GE(index, 0);
  TSP_DCHECK_LT(static_cast<std::size_t>(index), kNumSizeClasses);
  return kClassBlockSizes[index];
}

void* Allocator::Alloc(std::size_t payload_size, std::uint32_t type_id) {
  const std::size_t block_size = BlockSizeForPayload(payload_size);
  if (block_size == 0) return nullptr;
  const int size_class = SizeClassOf(block_size);
  TSP_DCHECK_GE(size_class, 0);

  void* payload = nullptr;
  if (magazines_enabled_ && size_class < kNumMagazineClasses) {
    ThreadCache* cache = GetCache();
    if (cache != nullptr) {
      payload = cache->Alloc(size_class, block_size, type_id);
    } else {
      payload = AllocShared(size_class, block_size, type_id, /*owner_tag=*/0);
    }
  } else {
    payload = AllocShared(size_class, block_size, type_id, /*owner_tag=*/0);
  }
  // TSPRace: a recycled block must not inherit lockset history from its
  // previous tenant — reset its shadow cells to virgin.
  analysis::HookAlloc(payload, block_size - sizeof(BlockHeader));
  return payload;
}

void* Allocator::AllocShared(int size_class, std::size_t block_size,
                             std::uint32_t type_id, std::uint16_t owner_tag) {
  std::uint64_t offset = PopFromList(size_class);
  if (offset == 0) {
    // Bump allocation. A crash between fetch_add and header
    // initialization leaks the reserved bytes; the recovery GC reclaims
    // them because nothing reachable covers the gap.
    const std::uint64_t arena_end =
        header_->arena_offset + header_->arena_size;
    offset = header_->bump_offset.fetch_add(block_size,
                                            std::memory_order_relaxed);
    if (offset + block_size > arena_end) {
      // Exhausted. Give the (unusable, partially out-of-range) reserved
      // bytes back by capping the published bump at arena_end so stats
      // stay sane; concurrent racers may also have overshot, which is
      // benign — the arena is simply full.
      return nullptr;
    }
  }

  auto* block = static_cast<BlockHeader*>(region_->FromOffset(offset));
  // Allocator metadata writes are blessed under TSPSan: headers are
  // advisory (recovery rebuilds them) and never undo-logged.
  ScopedWriteWindow window(block, sizeof(BlockHeader));
  block->magic = BlockHeader::kAllocatedMagic;
  block->type_id = type_id;
  block->block_size = BlockHeader::PackSize(block_size, owner_tag);
  header_->total_allocs.fetch_add(1, std::memory_order_relaxed);
  return block + 1;
}

void Allocator::Free(void* payload) {
  TSP_CHECK(payload != nullptr);
  TSP_CHECK(region_->Contains(payload));
  BlockHeader* block = HeaderOf(payload);
  TSP_CHECK_EQ(block->magic, BlockHeader::kAllocatedMagic)
      << "Free of unallocated or corrupt block";
  const std::uint64_t block_size = block->size();
  const int size_class = SizeClassOf(block_size);
  TSP_CHECK_GE(size_class, 0) << "corrupt block size";
  const std::uint16_t owner_tag = block->owner_tag();
  {
    ScopedWriteWindow window(block, sizeof(BlockHeader));
    block->magic = BlockHeader::kFreeMagic;
    // Free blocks carry the pure size (owner tags are meaningless once
    // nothing is allocated; validators compare the raw word).
    block->block_size = block_size;
  }
  const std::uint64_t offset = region_->ToOffset(block);

  if (magazines_enabled_ && size_class < kNumMagazineClasses) {
    ThreadCache* cache = GetCache();
    if (cache != nullptr) {
      cache->Free(size_class, offset, owner_tag);
      return;
    }
  }
  SharedFree(size_class, offset);
}

void Allocator::SharedFree(int size_class, std::uint64_t block_offset) {
  header_->total_frees.fetch_add(1, std::memory_order_relaxed);
  PushToList(size_class, block_offset);
}

bool Allocator::RemoteFreeTo(std::uint32_t slot, std::uint64_t block_offset) {
  TSP_DCHECK_LT(slot, kMaxThreadCaches);
  RemoteSlot& remote = remote_slots_[slot];
  if (remote.claimed.load(std::memory_order_acquire) == 0) return false;
  auto* payload = static_cast<FreeBlockPayload*>(
      region_->FromOffset(block_offset + sizeof(BlockHeader)));
  ScopedWriteWindow window(payload, sizeof(FreeBlockPayload));
  TaggedOffset old_head = remote.head.load(std::memory_order_acquire);
  for (;;) {
    payload->next_offset = OffsetOf(old_head);
    const TaggedOffset new_head =
        MakeTagged(TagOf(old_head) + 1, block_offset);
    if (remote.head.compare_exchange_weak(old_head, new_head,
                                          std::memory_order_release,
                                          std::memory_order_acquire)) {
      return true;
    }
  }
}

void Allocator::PushToList(int size_class, std::uint64_t block_offset) {
  auto* payload = static_cast<FreeBlockPayload*>(
      region_->FromOffset(block_offset + sizeof(BlockHeader)));
  ScopedWriteWindow window(payload, sizeof(FreeBlockPayload));
  std::atomic<TaggedOffset>& head = header_->free_list_head(size_class);
  TaggedOffset old_head = head.load(std::memory_order_acquire);
  for (;;) {
    payload->next_offset = OffsetOf(old_head);
    const TaggedOffset new_head =
        MakeTagged(TagOf(old_head) + 1, block_offset);
    if (head.compare_exchange_weak(old_head, new_head,
                                   std::memory_order_release,
                                   std::memory_order_acquire)) {
      return;
    }
  }
}

void Allocator::PushChainToList(int size_class, std::uint64_t first_offset,
                                std::uint64_t last_offset,
                                std::uint64_t count) {
  TSP_DCHECK_GT(count, 0u);
  (void)count;  // only used for the debug check and the call-site docs
  auto* last_payload = static_cast<FreeBlockPayload*>(
      region_->FromOffset(last_offset + sizeof(BlockHeader)));
  std::atomic<TaggedOffset>& head = header_->free_list_head(size_class);
  TaggedOffset old_head = head.load(std::memory_order_acquire);
  for (;;) {
    {
      ScopedWriteWindow window(last_payload, sizeof(FreeBlockPayload));
      last_payload->next_offset = OffsetOf(old_head);
    }
    const TaggedOffset new_head =
        MakeTagged(TagOf(old_head) + 1, first_offset);
    if (head.compare_exchange_weak(old_head, new_head,
                                   std::memory_order_release,
                                   std::memory_order_acquire)) {
      return;
    }
  }
}

std::uint64_t Allocator::PopFromList(int size_class) {
  std::atomic<TaggedOffset>& head = header_->free_list_head(size_class);
  TaggedOffset old_head = head.load(std::memory_order_acquire);
  for (;;) {
    const std::uint64_t offset = OffsetOf(old_head);
    if (offset == 0) return 0;
    const auto* payload = static_cast<const FreeBlockPayload*>(
        region_->FromOffset(offset + sizeof(BlockHeader)));
    const std::uint64_t next = payload->next_offset;
    const TaggedOffset new_head = MakeTagged(TagOf(old_head) + 1, next);
    if (head.compare_exchange_weak(old_head, new_head,
                                   std::memory_order_acquire,
                                   std::memory_order_acquire)) {
      return offset;
    }
  }
}

std::size_t Allocator::BatchPopFromList(int size_class, std::size_t want,
                                        std::uint64_t* out) {
  std::atomic<TaggedOffset>& head = header_->free_list_head(size_class);
  const std::uint64_t arena_start = header_->arena_offset;
  const std::uint64_t arena_end = arena_start + header_->arena_size;
  const std::size_t block_size = ClassBlockSize(size_class);
  std::uint64_t retries = 0;
  TaggedOffset old_head = head.load(std::memory_order_acquire);
  std::size_t taken = 0;
  for (;;) {
    std::uint64_t cur = OffsetOf(old_head);
    if (cur == 0) break;  // list empty
    // Walk up to `want` links. Concurrently popped-and-reused nodes can
    // expose garbage next links (classic Treiber ABA); the bounds check
    // keeps the walk from ever dereferencing outside the arena, and the
    // tag CAS below only succeeds if the head — and therefore the whole
    // chain we read — was untouched for the entire walk.
    std::size_t n = 0;
    bool torn = false;
    while (cur != 0 && n < want) {
      if (cur < arena_start || cur + block_size > arena_end ||
          cur % kGranule != 0) {
        torn = true;
        break;
      }
      out[n++] = cur;
      cur = static_cast<const FreeBlockPayload*>(
                region_->FromOffset(cur + sizeof(BlockHeader)))
                ->next_offset;
    }
    if (torn) {
      ++retries;
      old_head = head.load(std::memory_order_acquire);
      continue;
    }
    const TaggedOffset new_head = MakeTagged(TagOf(old_head) + 1, cur);
    if (head.compare_exchange_weak(old_head, new_head,
                                   std::memory_order_acquire,
                                   std::memory_order_acquire)) {
      // Magazines pop from the back of `out`; reversing keeps the list
      // head (the most recently freed, hottest block) popping first.
      std::reverse(out, out + n);
      taken = n;
      break;
    }
    ++retries;
  }
  if (retries > 0) {
    if (ThreadCache* cache = GetCache(); cache != nullptr) {
      Bump(cache->batch_pop_retries_, retries);
    }
  }
  return taken;
}

std::size_t Allocator::BatchCarve(std::size_t block_size, std::size_t want,
                                  std::uint64_t* out) {
  TSP_DCHECK_GT(want, 0u);
  const std::uint64_t arena_end = header_->arena_offset + header_->arena_size;
  const std::uint64_t offset = header_->bump_offset.fetch_add(
      block_size * want, std::memory_order_relaxed);
  if (offset >= arena_end) return 0;
  // Near exhaustion the tail of the reservation may stick out past the
  // arena; use the prefix that fits. Like the single-block overshoot,
  // any unusable remainder is simply leaked until the next recovery GC.
  const std::size_t usable = std::min<std::uint64_t>(
      want, (arena_end - offset) / block_size);
  if (usable == 0) return 0;
  // One blessed write window covers the whole carved range: freshly
  // reserved bytes are unreachable, so nothing here can need rollback.
  ScopedWriteWindow window(region_->FromOffset(offset), usable * block_size);
  for (std::size_t i = 0; i < usable; ++i) {
    const std::uint64_t block_offset = offset + i * block_size;
    auto* block =
        static_cast<BlockHeader*>(region_->FromOffset(block_offset));
    block->magic = BlockHeader::kFreeMagic;
    block->type_id = 0;
    block->block_size = block_size;
    // Descending order: magazines pop from the back of `out`, so the
    // carved range is handed out in ascending address order (exactly
    // like repeated single-block bumping).
    out[usable - 1 - i] = block_offset;
  }
  return usable;
}

ThreadCache* Allocator::GetCache() {
  // Fast path: one TLS load and one compare (no init-guard; see
  // FastBinding). The id match implies a live cache for this allocator
  // bound by this thread below.
  if (TSP_PREDICT_TRUE(tls_fast_binding.instance_id == instance_id_)) {
    return tls_fast_binding.cache;
  }
  auto& bindings = tls_caches.bindings;
  for (std::size_t i = 0; i < bindings.size(); ++i) {
    if (bindings[i].instance_id == instance_id_) {
      // Move-to-front: the common case (one hot allocator per thread)
      // resolves with a single compare even when many heaps were
      // touched over the thread's lifetime.
      if (i != 0) std::swap(bindings[0], bindings[i]);
      if (bindings[0].cache != nullptr) {
        tls_fast_binding = {instance_id_, bindings[0].cache};
      }
      return bindings[0].cache;
    }
  }
  ThreadCache* cache = RegisterThreadCache();
  // A nullptr binding (slots exhausted) is remembered too, so the
  // thread does not retry registration on every operation.
  bindings.insert(bindings.begin(), {instance_id_, cache});
  if (cache != nullptr) tls_fast_binding = {instance_id_, cache};
  return cache;
}

ThreadCache* Allocator::RegisterThreadCache() {
  // Prune bindings of dead allocators while we are off the fast path;
  // long-lived threads in heap-churning tests would otherwise scan an
  // ever-growing list.
  {
    LiveRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    auto& bindings = tls_caches.bindings;
    bindings.erase(
        std::remove_if(bindings.begin(), bindings.end(),
                       [&](const TlsCaches::Binding& b) {
                         return FindLiveLocked(registry, b.instance_id) ==
                                nullptr;
                       }),
        bindings.end());
  }
  std::lock_guard<std::mutex> lock(cache_mutex_);
  for (std::uint32_t slot = 0; slot < kMaxThreadCaches; ++slot) {
    if (remote_slots_[slot].claimed.load(std::memory_order_relaxed) != 0) {
      continue;
    }
    remote_slots_[slot].claimed.store(1, std::memory_order_release);
    // Blocks stranded by a retire/remote-free race belong to the new
    // claimant's class magazines via the normal reclaim path; nothing
    // from the previous owner may linger as inbox state.
    DrainRemoteSlot(slot);
    auto cache = std::make_unique<ThreadCache>(this, slot);
    if (recorder_ != nullptr) cache->trace_ = recorder_->writer();
    ThreadCache* raw = cache.get();
    caches_.push_back(std::move(cache));
    return raw;
  }
  return nullptr;  // more live threads than inbox slots: shared path
}

void Allocator::RetireCache(ThreadCache* cache) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  RetireCacheLocked(cache);
  for (auto it = caches_.begin(); it != caches_.end(); ++it) {
    if (it->get() == cache) {
      caches_.erase(it);
      break;
    }
  }
}

void Allocator::RetireCacheLocked(ThreadCache* cache) {
  // Stop remote frees targeting this inbox before draining it (a racer
  // that already loaded claimed=1 may still strand blocks; the next
  // claimant's DrainRemoteSlot reclaims them).
  remote_slots_[cache->slot_].claimed.store(0, std::memory_order_release);
  cache->DrainAll();
  // Persistent counters absorb the cache's deltas; volatile breakdowns
  // accumulate in retired_stats_ so GetStats keeps reporting them.
  const std::uint64_t allocs =
      cache->magazine_allocs_.load(std::memory_order_relaxed);
  const std::uint64_t frees =
      cache->magazine_frees_.load(std::memory_order_relaxed) +
      cache->remote_frees_.load(std::memory_order_relaxed);
  if (allocs > 0) {
    header_->total_allocs.fetch_add(allocs, std::memory_order_relaxed);
  }
  if (frees > 0) {
    header_->total_frees.fetch_add(frees, std::memory_order_relaxed);
  }
  retired_stats_.magazine_allocs +=
      cache->magazine_allocs_.load(std::memory_order_relaxed);
  retired_stats_.magazine_frees +=
      cache->magazine_frees_.load(std::memory_order_relaxed);
  retired_stats_.refill_batches +=
      cache->refill_batches_.load(std::memory_order_relaxed);
  retired_stats_.carve_batches +=
      cache->carve_batches_.load(std::memory_order_relaxed);
  retired_stats_.drain_batches +=
      cache->drain_batches_.load(std::memory_order_relaxed);
  retired_stats_.remote_frees +=
      cache->remote_frees_.load(std::memory_order_relaxed);
  retired_stats_.remote_reclaims +=
      cache->remote_reclaims_.load(std::memory_order_relaxed);
  retired_stats_.magazine_discards +=
      cache->discards_.load(std::memory_order_relaxed);
  retired_stats_.batch_pop_retries +=
      cache->batch_pop_retries_.load(std::memory_order_relaxed);
}

void Allocator::DrainRemoteSlot(std::uint32_t slot) {
  RemoteSlot& remote = remote_slots_[slot];
  TaggedOffset head = remote.head.load(std::memory_order_relaxed);
  if (OffsetOf(head) == 0) return;
  head = remote.head.exchange(MakeTagged(TagOf(head) + 1, 0),
                              std::memory_order_acquire);
  std::uint64_t cur = OffsetOf(head);
  while (cur != 0) {
    const auto* payload = static_cast<const FreeBlockPayload*>(
        region_->FromOffset(cur + sizeof(BlockHeader)));
    const std::uint64_t next = payload->next_offset;
    const auto* block =
        static_cast<const BlockHeader*>(region_->FromOffset(cur));
    const int size_class = SizeClassOf(block->size());
    TSP_CHECK_GE(size_class, 0) << "corrupt block in remote-free inbox";
    PushToList(size_class, cur);
    cur = next;
  }
}

void Allocator::FlushCurrentThreadCache() {
  if (tls_fast_binding.instance_id == instance_id_) {
    tls_fast_binding = {0, nullptr};  // the cache dies below
  }
  auto& bindings = tls_caches.bindings;
  for (auto it = bindings.begin(); it != bindings.end(); ++it) {
    if (it->instance_id != instance_id_) continue;
    ThreadCache* cache = it->cache;
    bindings.erase(it);
    if (cache != nullptr) RetireCache(cache);
    return;
  }
}

AllocatorStats Allocator::GetStats() const {
  AllocatorStats stats;
  stats.total_allocs = header_->total_allocs.load(std::memory_order_relaxed);
  stats.total_frees = header_->total_frees.load(std::memory_order_relaxed);
  stats.bump_offset = header_->bump_offset.load(std::memory_order_relaxed);
  stats.arena_end = header_->arena_offset + header_->arena_size;

  std::lock_guard<std::mutex> lock(cache_mutex_);
  // The header counters hold the shared-path operations plus the folded
  // deltas of retired caches; the difference is the pure shared count.
  stats.magazine_allocs = retired_stats_.magazine_allocs;
  stats.magazine_frees = retired_stats_.magazine_frees;
  stats.refill_batches = retired_stats_.refill_batches;
  stats.carve_batches = retired_stats_.carve_batches;
  stats.drain_batches = retired_stats_.drain_batches;
  stats.remote_frees = retired_stats_.remote_frees;
  stats.remote_reclaims = retired_stats_.remote_reclaims;
  stats.magazine_discards = retired_stats_.magazine_discards;
  stats.batch_pop_retries = retired_stats_.batch_pop_retries;
  stats.shared_allocs =
      stats.total_allocs - retired_stats_.magazine_allocs;
  stats.shared_frees = stats.total_frees -
                       (retired_stats_.magazine_frees +
                        retired_stats_.remote_frees);
  for (const auto& cache : caches_) {
    const std::uint64_t allocs =
        cache->magazine_allocs_.load(std::memory_order_relaxed);
    const std::uint64_t magazine_frees =
        cache->magazine_frees_.load(std::memory_order_relaxed);
    const std::uint64_t remote_frees =
        cache->remote_frees_.load(std::memory_order_relaxed);
    stats.total_allocs += allocs;
    stats.total_frees += magazine_frees + remote_frees;
    stats.magazine_allocs += allocs;
    stats.magazine_frees += magazine_frees;
    stats.remote_frees += remote_frees;
    stats.refill_batches +=
        cache->refill_batches_.load(std::memory_order_relaxed);
    stats.carve_batches +=
        cache->carve_batches_.load(std::memory_order_relaxed);
    stats.drain_batches +=
        cache->drain_batches_.load(std::memory_order_relaxed);
    stats.remote_reclaims +=
        cache->remote_reclaims_.load(std::memory_order_relaxed);
    stats.magazine_discards +=
        cache->discards_.load(std::memory_order_relaxed);
    stats.batch_pop_retries +=
        cache->batch_pop_retries_.load(std::memory_order_relaxed);
  }
  return stats;
}

std::vector<Allocator::FreeListLength> Allocator::FreeListLengths() const {
  std::vector<FreeListLength> lengths(kNumSizeClasses);
  const std::uint64_t arena_start = header_->arena_offset;
  const std::uint64_t bump =
      header_->bump_offset.load(std::memory_order_relaxed);
  // Defensive cycle bound, as in CheckHeap: a quiesced heap cannot have
  // more blocks than minimum-sized ones below the bump pointer.
  const std::uint64_t max_blocks =
      bump > arena_start ? (bump - arena_start) / (2 * kGranule) + 1 : 1;
  for (std::size_t c = 0; c < kNumSizeClasses; ++c) {
    lengths[c].block_size = ClassBlockSize(static_cast<int>(c));
    std::uint64_t offset = OffsetOf(
        header_->free_list_head(c).load(std::memory_order_acquire));
    std::uint64_t walked = 0;
    while (offset != 0 && walked <= max_blocks) {
      ++walked;
      offset = static_cast<const FreeBlockPayload*>(
                   region_->FromOffset(offset + sizeof(BlockHeader)))
                   ->next_offset;
    }
    lengths[c].blocks = walked;
  }
  return lengths;
}

void Allocator::ResetMetadata(std::uint64_t bump_offset) {
  TSP_CHECK_GE(bump_offset, header_->arena_offset);
  TSP_CHECK_LE(bump_offset, header_->arena_offset + header_->arena_size);
  for (std::size_t c = 0; c < kMaxSizeClasses; ++c) {
    header_->free_lists[c].head.store(0, std::memory_order_relaxed);
  }
  header_->bump_offset.store(bump_offset, std::memory_order_relaxed);
  // Remote-free inboxes hold offsets from the discarded metadata world;
  // forget them (the GC owns every non-live byte now). Slot claims are
  // kept — the registered caches stay valid, they just start empty.
  for (std::size_t slot = 0; slot < kMaxThreadCaches; ++slot) {
    remote_slots_[slot].head.store(0, std::memory_order_relaxed);
  }
  // Invalidate every magazine: each cache notices the new epoch on its
  // next operation and discards (never drains) its parked offsets.
  cache_epoch_.fetch_add(1, std::memory_order_relaxed);
}

void Allocator::PushFreeBlock(std::uint64_t offset, std::size_t block_size) {
  const int size_class = SizeClassOf(block_size);
  TSP_CHECK_GE(size_class, 0);
  auto* block = static_cast<BlockHeader*>(region_->FromOffset(offset));
  ScopedWriteWindow window(block, sizeof(BlockHeader));
  block->magic = BlockHeader::kFreeMagic;
  block->type_id = 0;
  block->block_size = block_size;
  PushToList(size_class, offset);
}

}  // namespace tsp::pheap
