// Copyright 2026 The TSP Authors.
// Lock-free size-class allocator over a persistent region's arena.
//
// Design for crash tolerance: allocator metadata (bump pointer and
// free-list heads in the RegionHeader, free-list links threaded through
// free blocks) is *advisory*. During failure-free operation it is exact;
// after a crash it may be arbitrarily stale or torn, and recovery
// discards it entirely — the mark-sweep GC (gc.h) recomputes the live
// set from the heap root and rebuilds the free lists. This mirrors the
// Atlas recovery-time garbage collector and means no allocation path
// ever needs logging or flushing.
//
// Thread safety: Alloc and Free are lock-free (tagged-pointer Treiber
// stacks plus an atomic bump pointer), so the allocator never blocks a
// non-blocking data structure built on top of it (§4.1).

#ifndef TSP_PHEAP_ALLOCATOR_H_
#define TSP_PHEAP_ALLOCATOR_H_

#include <cstddef>
#include <cstdint>

#include "pheap/layout.h"
#include "pheap/region.h"

namespace tsp::pheap {

/// Runtime statistics; exact while no crash intervenes.
struct AllocatorStats {
  std::uint64_t total_allocs = 0;
  std::uint64_t total_frees = 0;
  std::uint64_t bump_offset = 0;
  std::uint64_t arena_end = 0;
};

class Allocator {
 public:
  /// Number of size classes in use (block sizes, header included).
  static constexpr std::size_t kNumSizeClasses = 35;

  /// Largest supported payload (256 MiB block minus header).
  static std::size_t MaxPayloadSize();

  explicit Allocator(MappedRegion* region);

  Allocator(const Allocator&) = delete;
  Allocator& operator=(const Allocator&) = delete;

  /// Allocates at least `payload_size` bytes tagged with `type_id`.
  /// Returns nullptr when the arena is exhausted or the request exceeds
  /// MaxPayloadSize. The payload is 16-byte aligned and NOT zeroed
  /// (blocks recycled from free lists retain old bytes).
  void* Alloc(std::size_t payload_size, std::uint32_t type_id);

  /// Returns `payload` (obtained from Alloc) to its size-class free
  /// list. Double frees are detected via the header magic and fatal.
  void Free(void* payload);

  /// Header of an allocated payload.
  static BlockHeader* HeaderOf(void* payload) {
    return reinterpret_cast<BlockHeader*>(static_cast<char*>(payload) -
                                          sizeof(BlockHeader));
  }
  static const BlockHeader* HeaderOf(const void* payload) {
    return reinterpret_cast<const BlockHeader*>(
        static_cast<const char*>(payload) - sizeof(BlockHeader));
  }

  /// Total block size (header included) used for `payload_size`, or 0 if
  /// the request is too large. Exposed for tests and the GC.
  static std::size_t BlockSizeForPayload(std::size_t payload_size);

  /// Index of the size class whose block size is exactly `block_size`,
  /// or -1 if no class matches. Every block in the arena has a class-
  /// exact size, so Free can always find its list.
  static int SizeClassOf(std::size_t block_size);

  /// Block size of size class `index`.
  static std::size_t ClassBlockSize(int index);

  AllocatorStats GetStats() const;

  /// --- recovery interface (single-threaded contexts only) ---

  /// Clears every free list and resets the bump pointer; the GC calls
  /// this before re-populating free lists from swept gaps.
  void ResetMetadata(std::uint64_t bump_offset);

  /// Formats [offset, offset + block_size) as a free block of an exact
  /// class size and pushes it. Requires SizeClassOf(block_size) >= 0.
  void PushFreeBlock(std::uint64_t offset, std::size_t block_size);

  MappedRegion* region() const { return region_; }

 private:
  void PushToList(int size_class, std::uint64_t block_offset);
  std::uint64_t PopFromList(int size_class);

  MappedRegion* region_;
  RegionHeader* header_;
};

}  // namespace tsp::pheap

#endif  // TSP_PHEAP_ALLOCATOR_H_
