// Copyright 2026 The TSP Authors.
// Lock-free size-class allocator over a persistent region's arena,
// fronted by per-thread magazines.
//
// Design for crash tolerance: allocator metadata (bump pointer and
// free-list heads in the RegionHeader, free-list links threaded through
// free blocks, and the DRAM-resident per-thread magazines) is
// *advisory*. During failure-free operation it is exact; after a crash
// it may be arbitrarily stale, torn, or (for magazines) simply gone,
// and recovery discards it entirely — the mark-sweep GC (gc.h)
// recomputes the live set from the heap root and rebuilds the free
// lists. This mirrors the Atlas recovery-time garbage collector and
// means no allocation path ever needs logging or flushing: caching
// aggressively in DRAM is free precisely because recovery never reads
// the cache ("procrastinate, don't prevent", applied to allocation).
//
// Fast path: each thread keeps a magazine of block offsets per small
// size class, refilled by popping a batch from the shared free list
// (one CAS for the whole batch) or carving a batch from the bump
// pointer (one fetch_add), and drained back in batch when overfull or
// at thread exit. A free of another thread's block goes to that
// owner's remote-free inbox — a Treiber stack on an otherwise
// uncontended line — which the owner reclaims lazily on refill. The
// shared CAS lines are therefore touched once per ~batch operations
// instead of once per Alloc/Free (the per-thread-cache structure of
// Hoard and Makalu's NVM allocator).
//
// Thread safety: Alloc and Free are lock-free (magazines are
// thread-private; the shared structures are tagged-pointer Treiber
// stacks plus an atomic bump pointer), so the allocator never blocks a
// non-blocking data structure built on top of it (§4.1). A mutex is
// taken only on the cold paths that register or retire a thread cache.

#ifndef TSP_PHEAP_ALLOCATOR_H_
#define TSP_PHEAP_ALLOCATOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "pheap/layout.h"
#include "pheap/region.h"

namespace tsp::obs {
class Recorder;
}  // namespace tsp::obs

namespace tsp::pheap {

class ThreadCache;

/// Runtime statistics; exact while no crash intervenes. The magazine
/// counters are DRAM-only (volatile): they aggregate the live thread
/// caches plus every cache retired so far, and reset with the process.
struct AllocatorStats {
  std::uint64_t total_allocs = 0;
  std::uint64_t total_frees = 0;
  std::uint64_t bump_offset = 0;
  std::uint64_t arena_end = 0;

  /// Operations served from a thread-local magazine (no shared line).
  std::uint64_t magazine_allocs = 0;
  std::uint64_t magazine_frees = 0;
  /// Operations that fell through to the shared lists / bump pointer
  /// (magazines disabled, oversized class, or unregistered thread).
  std::uint64_t shared_allocs = 0;
  std::uint64_t shared_frees = 0;
  /// Batch transfers between magazines and the shared structures.
  std::uint64_t refill_batches = 0;   // batch pops from a shared list
  std::uint64_t carve_batches = 0;    // batch carves from the bump pointer
  std::uint64_t drain_batches = 0;    // overflow drains to a shared list
  /// Remote-free traffic: frees routed to another cache's inbox, and
  /// blocks the owner reclaimed from its own inbox.
  std::uint64_t remote_frees = 0;
  std::uint64_t remote_reclaims = 0;
  /// Caches invalidated because the GC rebuilt the metadata under them.
  std::uint64_t magazine_discards = 0;
  /// Batch-pop restarts after a head CAS failure or a torn next link
  /// (the ABA guard working as intended).
  std::uint64_t batch_pop_retries = 0;
};

class Allocator {
 public:
  /// Number of size classes in use (block sizes, header included).
  static constexpr std::size_t kNumSizeClasses = 35;

  /// Size classes eligible for magazine caching: block sizes up to
  /// 4 KiB (classes [0, kNumMagazineClasses)). Larger classes always
  /// use the shared structures — caching them would pin arena space
  /// for little CAS relief.
  static constexpr int kNumMagazineClasses = 15;

  /// Hard capacity of one magazine (offsets per class per thread); the
  /// effective capacity is magazine_capacity() and tunable below.
  static constexpr std::size_t kMagazineCapacity = 32;

  /// Remote-free inbox slots == maximum concurrently live caches.
  /// Threads past the limit fall back to the shared path.
  static constexpr std::size_t kMaxThreadCaches = 64;

  /// Largest supported payload (256 MiB block minus header).
  static std::size_t MaxPayloadSize();

  explicit Allocator(MappedRegion* region);
  ~Allocator();

  Allocator(const Allocator&) = delete;
  Allocator& operator=(const Allocator&) = delete;

  /// Allocates at least `payload_size` bytes tagged with `type_id`.
  /// Returns nullptr when the arena is exhausted or the request exceeds
  /// MaxPayloadSize. The payload is 16-byte aligned and NOT zeroed
  /// (blocks recycled from free lists retain old bytes).
  void* Alloc(std::size_t payload_size, std::uint32_t type_id);

  /// Returns `payload` (obtained from Alloc) to its size-class free
  /// list or the freeing thread's magazine. Double frees are detected
  /// via the header magic and fatal.
  void Free(void* payload);

  /// Header of an allocated payload.
  static BlockHeader* HeaderOf(void* payload) {
    return reinterpret_cast<BlockHeader*>(static_cast<char*>(payload) -
                                          sizeof(BlockHeader));
  }
  static const BlockHeader* HeaderOf(const void* payload) {
    return reinterpret_cast<const BlockHeader*>(
        static_cast<const char*>(payload) - sizeof(BlockHeader));
  }

  /// Total block size (header included) used for `payload_size`, or 0 if
  /// the request is too large. Exposed for tests and the GC.
  static std::size_t BlockSizeForPayload(std::size_t payload_size);

  /// Index of the size class whose block size is exactly `block_size`,
  /// or -1 if no class matches. Every block in the arena has a class-
  /// exact size, so Free can always find its list.
  static int SizeClassOf(std::size_t block_size);

  /// Block size of size class `index`.
  static std::size_t ClassBlockSize(int index);

  /// Aggregates the persistent header counters with every live thread
  /// cache's deltas (approximate under concurrency, like the Atlas
  /// runtime stats).
  AllocatorStats GetStats() const;

  /// Number of blocks currently on each shared free list, by walking
  /// the lists. Diagnostic: call only on a quiesced heap (tsp_inspect,
  /// tests); a torn snapshot is possible against live mutators. Blocks
  /// parked in magazines or inboxes are intentionally NOT counted.
  struct FreeListLength {
    std::size_t block_size = 0;
    std::uint64_t blocks = 0;
  };
  std::vector<FreeListLength> FreeListLengths() const;

  /// Drains the calling thread's magazines and remote-free inbox back
  /// to the shared free lists, folds its stat deltas into the region
  /// header, and retires the cache (a later Alloc re-registers). Call
  /// before an orderly thread exit or heap shutdown; crashed threads
  /// skip it by definition — the recovery GC reclaims their parked
  /// blocks. Thread exit and allocator destruction also drain
  /// automatically.
  void FlushCurrentThreadCache();

  /// Baseline toggle: with magazines disabled every operation uses the
  /// shared structures (the pre-magazine behavior, kept runnable for
  /// bench_alloc A/B runs and as a fallback). Honors the
  /// TSP_ALLOC_MAGAZINES environment variable ("0" disables) at
  /// construction. Flip only while no other thread is allocating.
  void set_magazines_enabled(bool enabled);
  bool magazines_enabled() const { return magazines_enabled_; }

  /// Effective per-class magazine capacity in [2, kMagazineCapacity].
  /// Honors TSP_ALLOC_MAGAZINE_CAP at construction; tiny values force
  /// constant refill/drain traffic (crash-injection tests use this the
  /// way the seq-lease tests use seq_block_size=2).
  void set_magazine_capacity(std::uint32_t capacity);
  std::uint32_t magazine_capacity() const { return magazine_capacity_; }

  /// --- recovery interface (single-threaded contexts only) ---

  /// Clears every free list and remote-free inbox, resets the bump
  /// pointer, and invalidates every thread cache (their parked offsets
  /// now alias rebuilt free space; each cache notices the epoch bump
  /// on its next operation and discards itself — discard, not drain:
  /// the GC already owns those bytes). The GC calls this before
  /// re-populating free lists from swept gaps.
  void ResetMetadata(std::uint64_t bump_offset);

  /// Formats [offset, offset + block_size) as a free block of an exact
  /// class size and pushes it. Requires SizeClassOf(block_size) >= 0.
  void PushFreeBlock(std::uint64_t offset, std::size_t block_size);

  MappedRegion* region() const { return region_; }

  /// Flight recorder of the owning heap; thread caches registered after
  /// this call trace their magazine refills/drains into it. May be null
  /// (tracing off). Set once right after construction, before mutators.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

  /// Epoch observed by thread caches; bumped by ResetMetadata.
  std::uint64_t cache_epoch() const {
    return cache_epoch_.load(std::memory_order_relaxed);
  }

 private:
  friend class ThreadCache;

  /// One remote-free inbox. Its line is touched by remote freers of
  /// this owner (rarely two at once) and by the owner's reclaim — not
  /// by every thread, unlike a shared free-list head.
  struct alignas(kCacheLine) RemoteSlot {
    std::atomic<TaggedOffset> head{0};
    /// 1 while a live cache owns the slot. A push racing with retire
    /// can strand blocks on an unclaimed slot; they are advisory and
    /// reclaimed on the next claim, ResetMetadata, or destruction.
    std::atomic<std::uint32_t> claimed{0};
  };

  /// Shared-structure paths (the seed fast path; now also the fallback
  /// and baseline). `owner_tag` is stamped into the header.
  void* AllocShared(int size_class, std::size_t block_size,
                    std::uint32_t type_id, std::uint16_t owner_tag);
  void SharedFree(int size_class, std::uint64_t block_offset);

  void PushToList(int size_class, std::uint64_t block_offset);
  std::uint64_t PopFromList(int size_class);
  /// Pushes a pre-linked chain of `count` blocks with one CAS.
  /// `last_offset`'s next link is rewritten to splice onto the head.
  void PushChainToList(int size_class, std::uint64_t first_offset,
                       std::uint64_t last_offset, std::uint64_t count);
  /// Pops up to `want` blocks from one list with a single successful
  /// CAS, validating every next link against the arena bounds while
  /// walking (a torn link under ABA forces a restart, never a wild
  /// read). Returns the number popped into `out`.
  std::size_t BatchPopFromList(int size_class, std::size_t want,
                               std::uint64_t* out);
  /// Reserves `want` contiguous blocks with one fetch_add and formats
  /// them as free blocks. May return fewer near arena exhaustion.
  std::size_t BatchCarve(std::size_t block_size, std::size_t want,
                         std::uint64_t* out);

  /// Calling thread's cache for this allocator, registering on first
  /// use. nullptr when magazines are off or the slots are exhausted.
  ThreadCache* GetCache();
  ThreadCache* RegisterThreadCache();
  /// Drains + unregisters one cache (registry mutex held inside).
  void RetireCache(ThreadCache* cache);
  /// Drain + stat-fold half of RetireCache; requires cache_mutex_.
  void RetireCacheLocked(ThreadCache* cache);
  /// Pushes `block_offset` onto inbox `slot` if it is claimed; a false
  /// return means the freer must keep the block on its own side.
  bool RemoteFreeTo(std::uint32_t slot, std::uint64_t block_offset);
  /// Empties inbox `slot` onto the shared free lists.
  void DrainRemoteSlot(std::uint32_t slot);

  MappedRegion* region_;
  RegionHeader* header_;
  obs::Recorder* recorder_ = nullptr;
  const std::uint64_t instance_id_;
  bool magazines_enabled_;
  std::uint32_t magazine_capacity_;
  std::atomic<std::uint64_t> cache_epoch_{1};
  std::unique_ptr<RemoteSlot[]> remote_slots_;

  mutable std::mutex cache_mutex_;
  std::vector<std::unique_ptr<ThreadCache>> caches_;
  /// Volatile counter residue of retired caches (persistent counters
  /// are folded into the header instead).
  AllocatorStats retired_stats_;
};

}  // namespace tsp::pheap

#endif  // TSP_PHEAP_ALLOCATOR_H_
