// Copyright 2026 The TSP Authors.
// On-media layout of a persistent heap region.
//
// A region is a single file mapped MAP_SHARED at a fixed virtual
// address, so pointers stored inside it remain valid across program
// invocations with no swizzling (paper §2: "today we can find empty
// virtual address ranges where a file can be reliably mapped to the
// same virtual address on every invocation").
//
//   +-------------------+ 0
//   | RegionHeader      |   control block, allocator metadata
//   +-------------------+ kHeaderSize
//   | runtime area      |   reserved for the resilience runtime
//   |                   |   (Atlas undo logs, lock words)
//   +-------------------+ runtime_area_offset + runtime_area_size
//   | arena             |   allocator-managed application objects
//   +-------------------+ region_size

#ifndef TSP_PHEAP_LAYOUT_H_
#define TSP_PHEAP_LAYOUT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace tsp::pheap {

/// Identifies a TSP persistent heap file.
inline constexpr std::uint64_t kRegionMagic = 0x3150414548505354ULL;  // "TSPHEAP1"
/// Version 2: RegionHeader::address_slot (the reserved word after
/// clean_shutdown) records the AddressSlotAllocator slot.
/// Version 3: the allocator hot fields of the RegionHeader (bump
/// pointer, free-list heads, stat counters) are padded onto distinct
/// cache lines (the heads one line each), and the high 16 bits of
/// BlockHeader::block_size now carry an advisory magazine owner tag.
/// Offsets are pinned by static_asserts below; bump kLayoutVersion
/// whenever any of them moves.
inline constexpr std::uint32_t kLayoutVersion = 3;

/// Smallest unit of arena accounting; block sizes and alignments are
/// multiples of this.
inline constexpr std::size_t kGranule = 16;

/// Alignment quantum for fields that must not share a line with an
/// unrelated contended field (false-sharing avoidance).
inline constexpr std::size_t kCacheLine = 64;

/// Bytes reserved for the RegionHeader at offset 0.
inline constexpr std::size_t kHeaderSize = 4096;

/// Number of allocation size classes (see allocator.h for the table).
inline constexpr std::size_t kMaxSizeClasses = 40;

/// A tagged offset used as a lock-free list head: low 48 bits are a byte
/// offset from the region base (0 = null), high 16 bits an ABA tag.
using TaggedOffset = std::uint64_t;

inline constexpr std::uint64_t kOffsetMask = (1ULL << 48) - 1;

constexpr std::uint64_t OffsetOf(TaggedOffset t) { return t & kOffsetMask; }
constexpr std::uint16_t TagOf(TaggedOffset t) {
  return static_cast<std::uint16_t>(t >> 48);
}
constexpr TaggedOffset MakeTagged(std::uint16_t tag, std::uint64_t offset) {
  return (static_cast<std::uint64_t>(tag) << 48) | (offset & kOffsetMask);
}

/// One shared free-list head on its own cache line. Threads of
/// different size classes must not invalidate each other's lines when
/// they CAS adjacent heads, and a head CAS must not invalidate the
/// read-mostly geometry fields either.
struct alignas(kCacheLine) PaddedFreeListHead {
  std::atomic<TaggedOffset> head{0};
  char padding_[kCacheLine - sizeof(std::atomic<TaggedOffset>)];
};

static_assert(sizeof(PaddedFreeListHead) == kCacheLine);

/// Control block at offset 0 of every region. All mutable fields are
/// lock-free atomics; they live in kernel-persistent memory, so their
/// latest values survive process crashes (TSP). After an *unclean*
/// shutdown the allocator fields are treated as advisory and rebuilt by
/// the recovery-time GC.
struct RegionHeader {
  // --- identity and geometry (read-mostly after creation) ---
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t header_size;
  /// Virtual address the region must be mapped at.
  std::uint64_t base_address;
  std::uint64_t region_size;
  std::uint64_t runtime_area_offset;
  std::uint64_t runtime_area_size;
  std::uint64_t arena_offset;
  std::uint64_t arena_size;

  /// Incremented on every open; lets recovery code and logs distinguish
  /// sessions.
  std::atomic<std::uint64_t> generation;
  /// 1 iff the previous session called CloseClean. Cleared on open.
  std::atomic<std::uint32_t> clean_shutdown;
  /// AddressSlotAllocator slot this region was placed in, or
  /// AddressSlotAllocator::kNoSlot (0xFFFFFFFF) for caller-chosen
  /// addresses. Open revalidates slot against base_address so a header
  /// edited (or mixed up) on disk can never silently clobber another
  /// region's range.
  std::uint32_t address_slot;

  /// Offset of the application root object (0 = unset). The root is the
  /// entry point from which all live persistent data must be reachable
  /// (get_root / set_root in the paper).
  std::atomic<std::uint64_t> root_offset;

  /// Global sequence number for resilience-runtime events (undo-log
  /// entry stamps). Lives here so it persists with the heap. Leased in
  /// per-thread blocks (runtime.h), so writes are rare enough to share
  /// the identity lines.
  std::atomic<std::uint64_t> global_sequence;

  // --- allocator metadata (advisory after a crash) ---
  // Each contended field group owns whole cache lines: the bump pointer
  // is fetch_add'ed by every carving thread, and every free-list head
  // is CAS'ed independently. Before version 3 all of them (plus the
  // stat counters) shared two lines, so unrelated size classes — and
  // pure readers of the geometry above — bounced one line around.

  /// Next never-allocated byte, as an offset; grows monotonically.
  alignas(kCacheLine) std::atomic<std::uint64_t> bump_offset;
  /// Lock-free free-list heads, one per size class, one line per head.
  alignas(kCacheLine) PaddedFreeListHead free_lists[kMaxSizeClasses];

  // --- statistics (monotonic, approximate after crashes) ---
  // Only written when a thread cache retires or by the magazine-free
  // shared fallback path, never per hot-path operation; live per-thread
  // deltas are aggregated by Allocator::GetStats.
  alignas(kCacheLine) std::atomic<std::uint64_t> total_allocs;
  std::atomic<std::uint64_t> total_frees;

  std::atomic<TaggedOffset>& free_list_head(std::size_t size_class) {
    return free_lists[size_class].head;
  }
  const std::atomic<TaggedOffset>& free_list_head(
      std::size_t size_class) const {
    return free_lists[size_class].head;
  }
};

// The persistent layout contract of version 3. Any change that moves
// one of these offsets must bump kLayoutVersion (old files are refused
// at open, never reinterpreted).
static_assert(offsetof(RegionHeader, bump_offset) == 2 * kCacheLine,
              "bump pointer must start its own cache line");
static_assert(offsetof(RegionHeader, free_lists) == 3 * kCacheLine,
              "free-list heads must not share the bump pointer's line");
static_assert(offsetof(RegionHeader, total_allocs) ==
                  3 * kCacheLine + kMaxSizeClasses * kCacheLine,
              "stat counters must not share a free-list head's line");
static_assert(sizeof(RegionHeader) <= kHeaderSize,
              "RegionHeader must fit in the reserved header block");
static_assert(std::atomic<std::uint64_t>::is_always_lock_free);

/// Per-block header preceding every arena allocation. A block is valid
/// only if its magic matches; recovery-time GC trusts headers only for
/// blocks reachable from the root (which are fully initialized before
/// they can become reachable).
struct BlockHeader {
  static constexpr std::uint32_t kAllocatedMagic = 0xA110CA7Eu;
  static constexpr std::uint32_t kFreeMagic = 0xF4EEB10Cu;

  /// block_size packs the total byte size (low 48 bits, multiple of
  /// kGranule, header included) with an advisory magazine owner tag
  /// (high 16 bits): 1 + the remote-free inbox slot of the thread
  /// cache that handed the block out, or 0 when no cache owns it.
  /// The tag is volatile information parked in persistent media purely
  /// because the header is the only per-block word; it is written only
  /// on allocated blocks, cleared on free, meaningless across sessions,
  /// and every validator (GC, CheckHeap) reads through size().
  static constexpr std::uint64_t kSizeMask = (1ULL << 48) - 1;

  std::uint32_t magic;
  /// Application type id, used by the GC to find the type's trace
  /// function. 0 = untyped leaf (no embedded pointers).
  std::uint32_t type_id;
  /// Packed size + owner tag; read through size() / owner_tag().
  std::uint64_t block_size;

  std::uint64_t size() const { return block_size & kSizeMask; }
  std::uint16_t owner_tag() const {
    return static_cast<std::uint16_t>(block_size >> 48);
  }
  static constexpr std::uint64_t PackSize(std::uint64_t size,
                                          std::uint16_t owner_tag) {
    return (static_cast<std::uint64_t>(owner_tag) << 48) |
           (size & kSizeMask);
  }
};

static_assert(sizeof(BlockHeader) == kGranule);

/// First 8 payload bytes of a free block link to the next free block
/// (byte offset from region base; 0 = end of list).
struct FreeBlockPayload {
  std::uint64_t next_offset;
};

}  // namespace tsp::pheap

#endif  // TSP_PHEAP_LAYOUT_H_
