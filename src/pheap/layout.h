// Copyright 2026 The TSP Authors.
// On-media layout of a persistent heap region.
//
// A region is a single file mapped MAP_SHARED at a fixed virtual
// address, so pointers stored inside it remain valid across program
// invocations with no swizzling (paper §2: "today we can find empty
// virtual address ranges where a file can be reliably mapped to the
// same virtual address on every invocation").
//
//   +-------------------+ 0
//   | RegionHeader      |   control block, allocator metadata
//   +-------------------+ kHeaderSize
//   | runtime area      |   reserved for the resilience runtime
//   |                   |   (Atlas undo logs, lock words)
//   +-------------------+ runtime_area_offset + runtime_area_size
//   | arena             |   allocator-managed application objects
//   +-------------------+ region_size

#ifndef TSP_PHEAP_LAYOUT_H_
#define TSP_PHEAP_LAYOUT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace tsp::pheap {

/// Identifies a TSP persistent heap file.
inline constexpr std::uint64_t kRegionMagic = 0x3150414548505354ULL;  // "TSPHEAP1"
/// Version 2: RegionHeader::address_slot (the reserved word after
/// clean_shutdown) records the AddressSlotAllocator slot.
inline constexpr std::uint32_t kLayoutVersion = 2;

/// Smallest unit of arena accounting; block sizes and alignments are
/// multiples of this.
inline constexpr std::size_t kGranule = 16;

/// Bytes reserved for the RegionHeader at offset 0.
inline constexpr std::size_t kHeaderSize = 4096;

/// Number of allocation size classes (see allocator.h for the table).
inline constexpr std::size_t kMaxSizeClasses = 40;

/// A tagged offset used as a lock-free list head: low 48 bits are a byte
/// offset from the region base (0 = null), high 16 bits an ABA tag.
using TaggedOffset = std::uint64_t;

inline constexpr std::uint64_t kOffsetMask = (1ULL << 48) - 1;

constexpr std::uint64_t OffsetOf(TaggedOffset t) { return t & kOffsetMask; }
constexpr std::uint16_t TagOf(TaggedOffset t) {
  return static_cast<std::uint16_t>(t >> 48);
}
constexpr TaggedOffset MakeTagged(std::uint16_t tag, std::uint64_t offset) {
  return (static_cast<std::uint64_t>(tag) << 48) | (offset & kOffsetMask);
}

/// Control block at offset 0 of every region. All mutable fields are
/// lock-free atomics; they live in kernel-persistent memory, so their
/// latest values survive process crashes (TSP). After an *unclean*
/// shutdown the allocator fields are treated as advisory and rebuilt by
/// the recovery-time GC.
struct RegionHeader {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t header_size;
  /// Virtual address the region must be mapped at.
  std::uint64_t base_address;
  std::uint64_t region_size;
  std::uint64_t runtime_area_offset;
  std::uint64_t runtime_area_size;
  std::uint64_t arena_offset;
  std::uint64_t arena_size;

  /// Incremented on every open; lets recovery code and logs distinguish
  /// sessions.
  std::atomic<std::uint64_t> generation;
  /// 1 iff the previous session called CloseClean. Cleared on open.
  std::atomic<std::uint32_t> clean_shutdown;
  /// AddressSlotAllocator slot this region was placed in, or
  /// AddressSlotAllocator::kNoSlot (0xFFFFFFFF) for caller-chosen
  /// addresses. Open revalidates slot against base_address so a header
  /// edited (or mixed up) on disk can never silently clobber another
  /// region's range.
  std::uint32_t address_slot;

  /// Offset of the application root object (0 = unset). The root is the
  /// entry point from which all live persistent data must be reachable
  /// (get_root / set_root in the paper).
  std::atomic<std::uint64_t> root_offset;

  /// Global sequence number for resilience-runtime events (undo-log
  /// entry stamps). Lives here so it persists with the heap.
  std::atomic<std::uint64_t> global_sequence;

  // --- allocator metadata (advisory after a crash) ---
  /// Next never-allocated byte, as an offset; grows monotonically.
  std::atomic<std::uint64_t> bump_offset;
  /// Lock-free free-list heads, one per size class.
  std::atomic<TaggedOffset> free_lists[kMaxSizeClasses];

  // --- statistics (monotonic, approximate after crashes) ---
  std::atomic<std::uint64_t> total_allocs;
  std::atomic<std::uint64_t> total_frees;
};

static_assert(sizeof(RegionHeader) <= kHeaderSize,
              "RegionHeader must fit in the reserved header block");
static_assert(std::atomic<std::uint64_t>::is_always_lock_free);

/// Per-block header preceding every arena allocation. A block is valid
/// only if its magic matches; recovery-time GC trusts headers only for
/// blocks reachable from the root (which are fully initialized before
/// they can become reachable).
struct BlockHeader {
  static constexpr std::uint32_t kAllocatedMagic = 0xA110CA7Eu;
  static constexpr std::uint32_t kFreeMagic = 0xF4EEB10Cu;

  std::uint32_t magic;
  /// Application type id, used by the GC to find the type's trace
  /// function. 0 = untyped leaf (no embedded pointers).
  std::uint32_t type_id;
  /// Total block size including this header; multiple of kGranule.
  std::uint64_t block_size;
};

static_assert(sizeof(BlockHeader) == kGranule);

/// First 8 payload bytes of a free block link to the next free block
/// (byte offset from region base; 0 = end of list).
struct FreeBlockPayload {
  std::uint64_t next_offset;
};

}  // namespace tsp::pheap

#endif  // TSP_PHEAP_LAYOUT_H_
