// Copyright 2026 The TSP Authors.
// MappedRegion: a persistent region mapped at a fixed virtual address.
//
// This is the TSP substrate for process crashes: per POSIX (paper
// Appendix A), every store to a MAP_SHARED mapping issued before a crash
// remains visible to subsequent readers of the file, with no flushing or
// msync during failure-free operation.
//
// Where the bytes live is a RegionBackend (backend.h); where the bytes
// are mapped is an AddressSlotAllocator slot (address_slots.h) unless
// the caller fixes the address. MappedRegion itself owns the format:
// header validation, generation/clean-shutdown bookkeeping, and slot
// revalidation on reopen.

#ifndef TSP_PHEAP_REGION_H_
#define TSP_PHEAP_REGION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "pheap/address_slots.h"
#include "pheap/backend.h"
#include "pheap/layout.h"

namespace tsp::pheap {

/// Options for creating a new region file.
struct RegionOptions {
  /// Total file/mapping size in bytes. Rounded up to the page size.
  std::size_t size = 256 * 1024 * 1024;
  /// Virtual address to map at. 0 takes the next free slot from the
  /// process-wide AddressSlotAllocator (slot 0 == the historical
  /// default address). Every subsequent Open maps at the address
  /// recorded in the header.
  std::uintptr_t base_address = 0;
  /// Bytes reserved between the header and the arena for the resilience
  /// runtime (undo logs, lock words).
  std::size_t runtime_area_size = 16 * 1024 * 1024;
  /// Storage mechanics; null uses the process-wide PosixFileBackend.
  std::shared_ptr<RegionBackend> backend;
  /// When auto-placing (base_address == 0) and a slot's range turns out
  /// to be occupied by a foreign mapping, quarantine it and try up to
  /// this many further slots before giving up.
  int slot_retries = 8;
};

/// Default fixed mapping address (== AddressSlotAllocator slot 0).
/// Chosen in a normally-empty part of the x86-64 user address space,
/// away from the program heap, stacks, and the mmap area.
inline constexpr std::uintptr_t kDefaultBaseAddress =
    AddressSlotAllocator::kSlotBase;

/// A mapped persistent region. Move-only; unmaps on destruction
/// *without* marking a clean shutdown (destruction is
/// indistinguishable from a crash by design — marking clean is an
/// explicit act, see MarkCleanShutdown).
class MappedRegion {
 public:
  ~MappedRegion();

  MappedRegion(const MappedRegion&) = delete;
  MappedRegion& operator=(const MappedRegion&) = delete;

  /// Creates a new region file at `path` (fails if it already exists),
  /// formats the header, and maps it.
  static StatusOr<std::unique_ptr<MappedRegion>> Create(
      const std::string& path, const RegionOptions& options);

  /// Opens an existing region file and maps it at its recorded base
  /// address. Returns kCorruption for files that are not TSP regions
  /// and kFailedPrecondition if the address range is unavailable or the
  /// header's recorded slot disagrees with its base address (no silent
  /// clobber).
  static StatusOr<std::unique_ptr<MappedRegion>> Open(
      const std::string& path,
      std::shared_ptr<RegionBackend> backend = nullptr);

  /// Read-only open for diagnostic tooling: maps PROT_READ and performs
  /// no header mutation whatsoever (no generation bump, no
  /// clean-shutdown clearing), so inspection never perturbs recovery
  /// state. Mutating methods are fatal on such regions.
  static StatusOr<std::unique_ptr<MappedRegion>> OpenReadOnly(
      const std::string& path,
      std::shared_ptr<RegionBackend> backend = nullptr);

  /// Open if the file exists, Create otherwise.
  static StatusOr<std::unique_ptr<MappedRegion>> OpenOrCreate(
      const std::string& path, const RegionOptions& options);

  /// Region base address (== header()->base_address).
  void* base() const { return base_; }
  std::size_t size() const { return size_; }
  RegionHeader* header() const { return reinterpret_cast<RegionHeader*>(base_); }
  const std::string& path() const { return path_; }

  /// The backend storing this region's bytes.
  RegionBackend* backend() const { return backend_.get(); }

  /// AddressSlotAllocator slot, or AddressSlotAllocator::kNoSlot for
  /// caller-fixed addresses outside the slot space.
  std::uint32_t address_slot() const { return slot_; }

  /// True iff the previous session did NOT mark a clean shutdown, i.e.
  /// this open constitutes crash recovery.
  bool opened_after_crash() const { return opened_after_crash_; }

  /// Declares recovery complete (rollback + GC done): the region is
  /// consistent again and runtimes may attach.
  void MarkRecovered() { opened_after_crash_ = false; }

  /// Converts between pointers into the region and byte offsets.
  std::uint64_t ToOffset(const void* p) const {
    return static_cast<std::uint64_t>(static_cast<const char*>(p) -
                                      static_cast<const char*>(base_));
  }
  void* FromOffset(std::uint64_t offset) const {
    return static_cast<char*>(base_) + offset;
  }
  bool Contains(const void* p) const {
    return p >= base_ && p < static_cast<const char*>(base_) + size_;
  }

  /// Synchronously writes all modified pages to the backing store
  /// (msync(MS_SYNC) for files). Not needed for process-crash
  /// tolerance; used by non-TSP plans that must reach block storage.
  Status SyncToBacking();

  /// Marks the clean-shutdown flag (and syncs it). Call before orderly
  /// process exit; skipping it simulates a crash.
  void MarkCleanShutdown();

  bool read_only() const { return read_only_; }

 private:
  MappedRegion(std::string path, void* mapped_base, std::size_t mapped_size,
               std::shared_ptr<RegionBackend> backend)
      : path_(std::move(path)),
        base_(mapped_base),
        size_(mapped_size),
        backend_(std::move(backend)) {}

  std::string path_;
  void* base_ = nullptr;
  std::size_t size_ = 0;
  std::shared_ptr<RegionBackend> backend_;
  std::uint32_t slot_ = AddressSlotAllocator::kNoSlot;
  /// True when this open acquired slot_ and must release it.
  bool owns_slot_ = false;
  bool opened_after_crash_ = false;
  bool read_only_ = false;
};

}  // namespace tsp::pheap

#endif  // TSP_PHEAP_REGION_H_
