#include "pheap/address_slots.h"

#include <string>

namespace tsp::pheap {
namespace {

constexpr std::uint32_t kQuarantineBit = 0x80000000u;

}  // namespace

AddressSlotAllocator& AddressSlotAllocator::Instance() {
  static AddressSlotAllocator instance;
  return instance;
}

StatusOr<std::uint32_t> AddressSlotAllocator::Acquire(std::size_t size) {
  const std::uint32_t need = SlotsFor(size);
  if (need == 0 || need > kSlotCount) {
    return Status::InvalidArgument("region size does not fit the slot space");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint32_t candidate = 0;
  while (candidate + need <= kSlotCount) {
    // The first span at or beyond the candidate bounds the free run;
    // any span beginning before candidate may still overlap it.
    bool clear = true;
    for (const auto& [first, length] : spans_) {
      const std::uint32_t span_len = length & ~kQuarantineBit;
      if (first < candidate + need && candidate < first + span_len) {
        candidate = first + span_len;
        clear = false;
        break;
      }
    }
    if (clear) {
      spans_[candidate] = need;
      return candidate;
    }
  }
  return Status::ResourceExhausted(
      "no free address slot span of " + std::to_string(need) +
      " slots; too many live regions in this process");
}

Status AddressSlotAllocator::AcquireSpecific(std::uint32_t slot,
                                             std::size_t size) {
  const std::uint32_t need = SlotsFor(size);
  if (slot >= kSlotCount || need == 0 || slot + need > kSlotCount) {
    return Status::InvalidArgument("slot span out of range");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [first, length] : spans_) {
    const std::uint32_t span_len = length & ~kQuarantineBit;
    if (first < slot + need && slot < first + span_len) {
      return Status::FailedPrecondition(
          "address slot " + std::to_string(slot) + " (span " +
          std::to_string(need) + ") overlaps a region already mapped in "
          "this process at slot " + std::to_string(first) +
          "; close it first (no silent clobber)");
    }
  }
  spans_[slot] = need;
  return Status::OK();
}

void AddressSlotAllocator::Release(std::uint32_t slot) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = spans_.find(slot);
  if (it != spans_.end() && (it->second & kQuarantineBit) == 0) {
    spans_.erase(it);
  }
}

void AddressSlotAllocator::Quarantine(std::uint32_t slot, std::size_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_[slot] = SlotsFor(size) | kQuarantineBit;
}

std::uint32_t AddressSlotAllocator::held_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint32_t held = 0;
  for (const auto& [first, length] : spans_) {
    (void)first;
    if ((length & kQuarantineBit) == 0) ++held;
  }
  return held;
}

}  // namespace tsp::pheap
