// Copyright 2026 The TSP Authors.
// AddressSlotAllocator: process-wide bookkeeping of the fixed virtual
// address ranges persistent regions map at.
//
// The paper's pointer-stability argument (§2: "today we can find empty
// virtual address ranges where a file can be reliably mapped to the
// same virtual address on every invocation") generalizes from one
// region to many: carve a normally-empty part of the x86-64 user
// address space into fixed-size slots and hand each region its own.
// Slot 0 is the historical kDefaultBaseAddress, so single-region
// programs keep their layout. A region larger than one slot takes a
// span of consecutive slots.
//
// The allocator only knows about regions opened through it in *this*
// process; collisions with foreign mappings (the program image, other
// libraries) surface as mmap failures, which MappedRegion turns into
// diagnostics naming the conflicting mapping (see backend.h) and, for
// auto-placed regions, a retry at the next free slot.

#ifndef TSP_PHEAP_ADDRESS_SLOTS_H_
#define TSP_PHEAP_ADDRESS_SLOTS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>

#include "common/status.h"

namespace tsp::pheap {

class AddressSlotAllocator {
 public:
  /// First byte of the slot space (== slot 0 == kDefaultBaseAddress).
  static constexpr std::uintptr_t kSlotBase = 0x200000000000ULL;
  /// Bytes per slot: 4 GiB, comfortably above the default region size
  /// while keeping the 64-slot space within an empty 256 GiB window
  /// (tests that pick manual addresses start at 0x210000000000).
  static constexpr std::uintptr_t kSlotStride = 0x100000000ULL;
  static constexpr std::uint32_t kSlotCount = 64;
  /// Sentinel recorded in RegionHeader::address_slot for regions mapped
  /// at a caller-chosen address outside the slot space.
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  static AddressSlotAllocator& Instance();

  /// Reserves the lowest free span of consecutive slots covering `size`
  /// bytes; returns the first slot index.
  StatusOr<std::uint32_t> Acquire(std::size_t size);

  /// Reserves exactly the span starting at `slot` (used when reopening
  /// a region whose header records its slot). Fails with
  /// kFailedPrecondition when any slot of the span is already held, so
  /// two live regions can never silently clobber each other.
  Status AcquireSpecific(std::uint32_t slot, std::size_t size);

  /// Releases a span previously acquired (first slot index). Releasing
  /// an unheld slot is a no-op.
  void Release(std::uint32_t slot);

  /// Marks a span unusable for the rest of the process (a foreign
  /// mapping occupies it); Acquire skips it from now on.
  void Quarantine(std::uint32_t slot, std::size_t size);

  /// Virtual address of a slot index.
  static constexpr std::uintptr_t AddressOf(std::uint32_t slot) {
    return kSlotBase + static_cast<std::uintptr_t>(slot) * kSlotStride;
  }

  /// Inverse of AddressOf: the slot whose base is exactly `addr`, or
  /// kNoSlot when `addr` is not a slot boundary in range.
  static constexpr std::uint32_t SlotOf(std::uintptr_t addr) {
    if (addr < kSlotBase || (addr - kSlotBase) % kSlotStride != 0) {
      return kNoSlot;
    }
    const std::uintptr_t index = (addr - kSlotBase) / kSlotStride;
    return index < kSlotCount ? static_cast<std::uint32_t>(index) : kNoSlot;
  }

  static constexpr std::uint32_t SlotsFor(std::size_t size) {
    return static_cast<std::uint32_t>((size + kSlotStride - 1) / kSlotStride);
  }

  /// Held slots right now (test introspection).
  std::uint32_t held_count() const;

 private:
  AddressSlotAllocator() = default;

  mutable std::mutex mutex_;
  /// first slot -> span length; quarantined spans use length with the
  /// high bit set so Release cannot free them.
  std::map<std::uint32_t, std::uint32_t> spans_;
};

}  // namespace tsp::pheap

#endif  // TSP_PHEAP_ADDRESS_SLOTS_H_
