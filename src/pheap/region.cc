#include "pheap/region.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <new>

#include "common/logging.h"

namespace tsp::pheap {
namespace {

std::size_t RoundUpToPage(std::size_t n) {
  const std::size_t page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return (n + page - 1) & ~(page - 1);
}

std::shared_ptr<RegionBackend> Resolve(std::shared_ptr<RegionBackend> b) {
  return b != nullptr ? std::move(b) : DefaultBackend();
}

/// Peeked header fields, copied out of the backing store before any
/// fixed-address mapping exists.
struct PeekedHeader {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t address_slot;
  std::uint64_t base_address;
  std::uint64_t region_size;
  std::uint64_t store_size;
};

Status PeekHeader(RegionBackend* backend, const std::string& path,
                  PeekedHeader* out) {
  alignas(alignof(RegionHeader)) unsigned char buffer[kHeaderSize];
  std::uint64_t store_size = 0;
  TSP_RETURN_IF_ERROR(
      backend->PeekHeader(path, buffer, sizeof(buffer), &store_size));
  if (store_size < kHeaderSize) {
    return Status::Corruption("file too small to be a TSP region: " + path);
  }
  const auto* header = reinterpret_cast<const RegionHeader*>(buffer);
  out->magic = header->magic;
  out->version = header->version;
  out->address_slot = header->address_slot;
  out->base_address = header->base_address;
  out->region_size = header->region_size;
  out->store_size = store_size;
  return Status::OK();
}

/// Validates the recorded slot against the recorded base address and
/// reserves it for the lifetime of the mapping. Returns whether the
/// caller owns a slot to release.
StatusOr<bool> ReserveRecordedSlot(const PeekedHeader& peeked,
                                   const std::string& path) {
  if (peeked.address_slot == AddressSlotAllocator::kNoSlot) return false;
  if (AddressSlotAllocator::AddressOf(peeked.address_slot) !=
      peeked.base_address) {
    return Status::FailedPrecondition(
        "region header of " + path + " records address slot " +
        std::to_string(peeked.address_slot) +
        " but a base address that is not that slot's; refusing to map "
        "(no silent clobber)");
  }
  TSP_RETURN_IF_ERROR(AddressSlotAllocator::Instance().AcquireSpecific(
      peeked.address_slot, peeked.region_size));
  return true;
}

}  // namespace

MappedRegion::~MappedRegion() {
  if (base_ != nullptr) {
    backend_->Unmap(base_, size_);
  }
  if (owns_slot_) {
    AddressSlotAllocator::Instance().Release(slot_);
  }
}

StatusOr<std::unique_ptr<MappedRegion>> MappedRegion::Create(
    const std::string& user_path, const RegionOptions& options) {
  std::shared_ptr<RegionBackend> backend = Resolve(options.backend);
  const std::string path = backend->ResolvePath(user_path);
  const std::size_t size = RoundUpToPage(options.size);
  const std::size_t runtime_size = RoundUpToPage(options.runtime_area_size);
  if (size < kHeaderSize + runtime_size + (1u << 20)) {
    return Status::InvalidArgument(
        "region size too small for header + runtime area + a usable arena");
  }

  AddressSlotAllocator& slots = AddressSlotAllocator::Instance();
  std::uintptr_t base_address = 0;
  std::uint32_t slot = AddressSlotAllocator::kNoSlot;
  bool owns_slot = false;
  void* mapped_base = nullptr;

  if (options.base_address != 0) {
    // Caller-fixed placement. When the address is exactly a slot
    // boundary, still reserve the slot so auto-placed regions cannot
    // land on it.
    base_address = options.base_address;
    if (base_address % kGranule != 0) {
      return Status::InvalidArgument("base address must be 16-byte aligned");
    }
    slot = AddressSlotAllocator::SlotOf(base_address);
    if (slot != AddressSlotAllocator::kNoSlot) {
      TSP_RETURN_IF_ERROR(slots.AcquireSpecific(slot, size));
      owns_slot = true;
    }
    auto mapped = backend->CreateAndMap(path, size, base_address);
    if (!mapped.ok()) {
      if (owns_slot) slots.Release(slot);
      return mapped.status();
    }
    mapped_base = *mapped;
  } else {
    // Auto placement: walk free slots, quarantining any whose range a
    // foreign mapping occupies.
    Status last_failure = Status::OK();
    for (int attempt = 0; attempt <= options.slot_retries; ++attempt) {
      auto acquired = slots.Acquire(size);
      if (!acquired.ok()) {
        return last_failure.ok() ? acquired.status() : last_failure;
      }
      slot = *acquired;
      base_address = AddressSlotAllocator::AddressOf(slot);
      auto mapped = backend->CreateAndMap(path, size, base_address);
      if (mapped.ok()) {
        owns_slot = true;
        mapped_base = *mapped;
        break;
      }
      slots.Release(slot);
      if (mapped.status().code() != StatusCode::kFailedPrecondition) {
        return mapped.status();  // not an address conflict: no retry
      }
      // Something foreign occupies this slot's range; never offer it
      // again in this process, then try the next one.
      slots.Quarantine(slot, size);
      last_failure = mapped.status();
      slot = AddressSlotAllocator::kNoSlot;
    }
    if (mapped_base == nullptr) {
      return last_failure;
    }
  }

  auto* header = new (mapped_base) RegionHeader();
  header->magic = kRegionMagic;
  header->version = kLayoutVersion;
  header->header_size = kHeaderSize;
  header->base_address = base_address;
  header->region_size = size;
  header->runtime_area_offset = kHeaderSize;
  header->runtime_area_size = runtime_size;
  header->arena_offset = kHeaderSize + runtime_size;
  header->arena_size = size - header->arena_offset;
  header->generation.store(1, std::memory_order_relaxed);
  header->clean_shutdown.store(0, std::memory_order_relaxed);
  header->address_slot = slot;
  header->root_offset.store(0, std::memory_order_relaxed);
  header->global_sequence.store(1, std::memory_order_relaxed);
  header->bump_offset.store(header->arena_offset, std::memory_order_relaxed);
  for (auto& list : header->free_lists) {
    list.head.store(0, std::memory_order_relaxed);
  }
  header->total_allocs.store(0, std::memory_order_relaxed);
  header->total_frees.store(0, std::memory_order_relaxed);

  auto region = std::unique_ptr<MappedRegion>(
      new MappedRegion(path, mapped_base, size, std::move(backend)));
  region->slot_ = slot;
  region->owns_slot_ = owns_slot;
  region->opened_after_crash_ = false;
  return region;
}

StatusOr<std::unique_ptr<MappedRegion>> MappedRegion::Open(
    const std::string& user_path, std::shared_ptr<RegionBackend> backend_in) {
  std::shared_ptr<RegionBackend> backend = Resolve(std::move(backend_in));
  const std::string path = backend->ResolvePath(user_path);

  PeekedHeader peeked;
  TSP_RETURN_IF_ERROR(PeekHeader(backend.get(), path, &peeked));
  if (peeked.magic != kRegionMagic) {
    return Status::Corruption("bad magic; not a TSP region: " + path);
  }
  if (peeked.version != kLayoutVersion) {
    return Status::Corruption("unsupported region layout version " +
                              std::to_string(peeked.version));
  }
  if (peeked.region_size != peeked.store_size) {
    return Status::Corruption("region size mismatch with file size");
  }

  TSP_ASSIGN_OR_RETURN(const bool owns_slot,
                       ReserveRecordedSlot(peeked, path));
  auto mapped = backend->MapExisting(path, peeked.region_size,
                                     peeked.base_address,
                                     /*read_only=*/false);
  if (!mapped.ok()) {
    if (owns_slot) {
      AddressSlotAllocator::Instance().Release(peeked.address_slot);
    }
    return mapped.status();
  }

  auto region = std::unique_ptr<MappedRegion>(new MappedRegion(
      path, *mapped, peeked.region_size, std::move(backend)));
  region->slot_ = peeked.address_slot;
  region->owns_slot_ = owns_slot;
  RegionHeader* header = region->header();
  region->opened_after_crash_ =
      header->clean_shutdown.load(std::memory_order_relaxed) == 0;
  header->clean_shutdown.store(0, std::memory_order_relaxed);
  header->generation.fetch_add(1, std::memory_order_relaxed);
  return region;
}

StatusOr<std::unique_ptr<MappedRegion>> MappedRegion::OpenOrCreate(
    const std::string& path, const RegionOptions& options) {
  auto opened = Open(path, options.backend);
  if (opened.ok() || opened.status().code() != StatusCode::kNotFound) {
    return opened;
  }
  return Create(path, options);
}

StatusOr<std::unique_ptr<MappedRegion>> MappedRegion::OpenReadOnly(
    const std::string& user_path, std::shared_ptr<RegionBackend> backend_in) {
  std::shared_ptr<RegionBackend> backend = Resolve(std::move(backend_in));
  const std::string path = backend->ResolvePath(user_path);

  PeekedHeader peeked;
  TSP_RETURN_IF_ERROR(PeekHeader(backend.get(), path, &peeked));
  if (peeked.magic != kRegionMagic ||
      peeked.region_size != peeked.store_size) {
    return Status::Corruption("not a TSP region (or truncated): " + path);
  }
  if (peeked.version != kLayoutVersion) {
    return Status::Corruption("unsupported region layout version " +
                              std::to_string(peeked.version));
  }

  // Diagnostics never reserve the slot: the mapping is private and
  // read-only, and a live writer in another process stays untouched.
  auto mapped = backend->MapExisting(path, peeked.region_size,
                                     peeked.base_address, /*read_only=*/true);
  if (!mapped.ok()) {
    return Status::FailedPrecondition(
        "cannot map read-only region at its fixed address: " +
        mapped.status().message());
  }
  auto region = std::unique_ptr<MappedRegion>(new MappedRegion(
      path, *mapped, peeked.region_size, std::move(backend)));
  region->slot_ = peeked.address_slot;
  region->read_only_ = true;
  region->opened_after_crash_ =
      region->header()->clean_shutdown.load(std::memory_order_relaxed) == 0;
  return region;
}

Status MappedRegion::SyncToBacking() {
  TSP_CHECK(!read_only_) << "SyncToBacking on a read-only region";
  return backend_->Sync(base_, size_);
}

void MappedRegion::MarkCleanShutdown() {
  TSP_CHECK(!read_only_) << "MarkCleanShutdown on a read-only region";
  header()->clean_shutdown.store(1, std::memory_order_release);
  // A clean shutdown is an explicit durability point even on
  // conventional hardware: push everything to the backing store.
  const Status synced = backend_->Sync(base_, size_);
  if (!synced.ok()) {
    TSP_LOG(WARNING) << "sync on clean shutdown failed: "
                     << synced.ToString();
  }
}

}  // namespace tsp::pheap
