#include "pheap/region.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <new>

#include "common/logging.h"

namespace tsp::pheap {
namespace {

std::size_t RoundUpToPage(std::size_t n) {
  const std::size_t page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return (n + page - 1) & ~(page - 1);
}

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

StatusOr<void*> MapFileAt(int fd, std::size_t size, std::uintptr_t addr) {
  void* want = reinterpret_cast<void*>(addr);
#ifdef MAP_FIXED_NOREPLACE
  void* got = mmap(want, size, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_FIXED_NOREPLACE, fd, 0);
  if (got == MAP_FAILED) {
    return Status::FailedPrecondition(
        "cannot map region at its fixed address " + std::to_string(addr) +
        ": " + std::strerror(errno));
  }
#else
  void* got = mmap(want, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (got == MAP_FAILED) return ErrnoStatus("mmap");
#endif
  if (got != want) {
    munmap(got, size);
    return Status::FailedPrecondition(
        "kernel mapped the region at a different address; the fixed range "
        "is occupied");
  }
  return got;
}

}  // namespace

MappedRegion::~MappedRegion() {
  if (base_ != nullptr) {
    munmap(base_, size_);
  }
}

StatusOr<std::unique_ptr<MappedRegion>> MappedRegion::Create(
    const std::string& path, const RegionOptions& options) {
  const std::size_t size = RoundUpToPage(options.size);
  const std::uintptr_t base_address =
      options.base_address != 0 ? options.base_address : kDefaultBaseAddress;
  const std::size_t runtime_size = RoundUpToPage(options.runtime_area_size);
  if (size < kHeaderSize + runtime_size + (1u << 20)) {
    return Status::InvalidArgument(
        "region size too small for header + runtime area + a usable arena");
  }
  if (base_address % kGranule != 0) {
    return Status::InvalidArgument("base address must be 16-byte aligned");
  }

  const int fd = open(path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    if (errno == EEXIST) {
      return Status::AlreadyExists("region file exists: " + path);
    }
    return ErrnoStatus("open " + path);
  }
  if (ftruncate(fd, static_cast<off_t>(size)) != 0) {
    const Status s = ErrnoStatus("ftruncate " + path);
    close(fd);
    unlink(path.c_str());
    return s;
  }

  auto mapped = MapFileAt(fd, size, base_address);
  close(fd);  // The mapping keeps the file alive.
  if (!mapped.ok()) {
    unlink(path.c_str());
    return mapped.status();
  }

  auto* header = new (*mapped) RegionHeader();
  header->magic = kRegionMagic;
  header->version = kLayoutVersion;
  header->header_size = kHeaderSize;
  header->base_address = base_address;
  header->region_size = size;
  header->runtime_area_offset = kHeaderSize;
  header->runtime_area_size = runtime_size;
  header->arena_offset = kHeaderSize + runtime_size;
  header->arena_size = size - header->arena_offset;
  header->generation.store(1, std::memory_order_relaxed);
  header->clean_shutdown.store(0, std::memory_order_relaxed);
  header->root_offset.store(0, std::memory_order_relaxed);
  header->global_sequence.store(1, std::memory_order_relaxed);
  header->bump_offset.store(header->arena_offset, std::memory_order_relaxed);
  for (auto& head : header->free_lists) {
    head.store(0, std::memory_order_relaxed);
  }
  header->total_allocs.store(0, std::memory_order_relaxed);
  header->total_frees.store(0, std::memory_order_relaxed);

  auto region = std::unique_ptr<MappedRegion>(
      new MappedRegion(path, *mapped, size));
  region->opened_after_crash_ = false;
  return region;
}

StatusOr<std::unique_ptr<MappedRegion>> MappedRegion::Open(
    const std::string& path) {
  const int fd = open(path.c_str(), O_RDWR);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no region file: " + path);
    return ErrnoStatus("open " + path);
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    const Status s = ErrnoStatus("fstat " + path);
    close(fd);
    return s;
  }
  if (static_cast<std::size_t>(st.st_size) < kHeaderSize) {
    close(fd);
    return Status::Corruption("file too small to be a TSP region: " + path);
  }

  // Peek at the header through a temporary private mapping to learn the
  // required base address and size.
  void* peek = mmap(nullptr, kHeaderSize, PROT_READ, MAP_PRIVATE, fd, 0);
  if (peek == MAP_FAILED) {
    const Status s = ErrnoStatus("mmap header " + path);
    close(fd);
    return s;
  }
  const auto* peeked = static_cast<const RegionHeader*>(peek);
  const std::uint64_t magic = peeked->magic;
  const std::uint32_t version = peeked->version;
  const std::uint64_t base_address = peeked->base_address;
  const std::uint64_t region_size = peeked->region_size;
  munmap(peek, kHeaderSize);

  if (magic != kRegionMagic) {
    close(fd);
    return Status::Corruption("bad magic; not a TSP region: " + path);
  }
  if (version != kLayoutVersion) {
    close(fd);
    return Status::Corruption("unsupported region layout version " +
                              std::to_string(version));
  }
  if (region_size != static_cast<std::uint64_t>(st.st_size)) {
    close(fd);
    return Status::Corruption("region size mismatch with file size");
  }

  auto mapped = MapFileAt(fd, region_size, base_address);
  close(fd);
  if (!mapped.ok()) return mapped.status();

  auto region = std::unique_ptr<MappedRegion>(
      new MappedRegion(path, *mapped, region_size));
  RegionHeader* header = region->header();
  region->opened_after_crash_ =
      header->clean_shutdown.load(std::memory_order_relaxed) == 0;
  header->clean_shutdown.store(0, std::memory_order_relaxed);
  header->generation.fetch_add(1, std::memory_order_relaxed);
  return region;
}

StatusOr<std::unique_ptr<MappedRegion>> MappedRegion::OpenOrCreate(
    const std::string& path, const RegionOptions& options) {
  auto opened = Open(path);
  if (opened.ok() || opened.status().code() != StatusCode::kNotFound) {
    return opened;
  }
  return Create(path, options);
}

StatusOr<std::unique_ptr<MappedRegion>> MappedRegion::OpenReadOnly(
    const std::string& path) {
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no region file: " + path);
    return ErrnoStatus("open " + path);
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    const Status s = ErrnoStatus("fstat " + path);
    close(fd);
    return s;
  }
  if (static_cast<std::size_t>(st.st_size) < kHeaderSize) {
    close(fd);
    return Status::Corruption("file too small to be a TSP region: " + path);
  }
  // Map at an arbitrary address: read-only inspection follows offsets
  // relative to the recorded base, but tools that only read header and
  // log metadata work regardless; pointer-chasing inspection (check)
  // needs the fixed address, so try it first and fall back.
  void* peek = mmap(nullptr, kHeaderSize, PROT_READ, MAP_PRIVATE, fd, 0);
  if (peek == MAP_FAILED) {
    const Status s = ErrnoStatus("mmap header " + path);
    close(fd);
    return s;
  }
  const auto* peeked = static_cast<const RegionHeader*>(peek);
  const std::uint64_t magic = peeked->magic;
  const std::uint64_t base_address = peeked->base_address;
  const std::uint64_t region_size = peeked->region_size;
  munmap(peek, kHeaderSize);
  if (magic != kRegionMagic ||
      region_size != static_cast<std::uint64_t>(st.st_size)) {
    close(fd);
    return Status::Corruption("not a TSP region (or truncated): " + path);
  }

  void* want = reinterpret_cast<void*>(base_address);
#ifdef MAP_FIXED_NOREPLACE
  void* got = mmap(want, region_size, PROT_READ,
                   MAP_PRIVATE | MAP_FIXED_NOREPLACE, fd, 0);
#else
  void* got = mmap(want, region_size, PROT_READ, MAP_PRIVATE, fd, 0);
#endif
  if (got == MAP_FAILED || got != want) {
    if (got != MAP_FAILED) munmap(got, region_size);
    close(fd);
    return Status::FailedPrecondition(
        "cannot map read-only region at its fixed address");
  }
  close(fd);
  auto region = std::unique_ptr<MappedRegion>(
      new MappedRegion(path, got, region_size));
  region->read_only_ = true;
  region->opened_after_crash_ =
      region->header()->clean_shutdown.load(std::memory_order_relaxed) == 0;
  return region;
}

Status MappedRegion::SyncToBacking() {
  TSP_CHECK(!read_only_) << "SyncToBacking on a read-only region";
  if (msync(base_, size_, MS_SYNC) != 0) return ErrnoStatus("msync");
  return Status::OK();
}

void MappedRegion::MarkCleanShutdown() {
  TSP_CHECK(!read_only_) << "MarkCleanShutdown on a read-only region";
  header()->clean_shutdown.store(1, std::memory_order_release);
  // A clean shutdown is an explicit durability point even on
  // conventional hardware: push everything to the backing file.
  if (msync(base_, size_, MS_SYNC) != 0) {
    TSP_LOG(WARNING) << "msync on clean shutdown failed: "
                     << std::strerror(errno);
  }
}

}  // namespace tsp::pheap
