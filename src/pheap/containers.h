// Copyright 2026 The TSP Authors.
// Small persistent containers built on the §4.1 publish-after-initialize
// discipline: every mutation orders its stores so that a recovery
// observer — which sees a strict prefix of the issued stores — always
// finds a consistent container. With a single writer (or external
// synchronization) they need no logging and no flushing at all.
//
// For mutex-based multi-writer use, wrap mutations in a PMutex critical
// section and route stores through AtlasThread::Store instead; these
// containers are the zero-overhead single-writer counterpart.

#ifndef TSP_PHEAP_CONTAINERS_H_
#define TSP_PHEAP_CONTAINERS_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <type_traits>

#include "common/logging.h"
#include "pheap/heap.h"
#include "pheap/type_registry.h"

namespace tsp::pheap {

// GCC 12's object-size analysis misfires on atomic accesses through
// heap-payload pointers it cannot size (e.g. objects reached via the
// persistent root); all accesses here are in-bounds by construction.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"

/// Fixed-capacity persistent vector of a trivially copyable element
/// type. Layout: [capacity][size][elements...]. push_back publishes the
/// element *before* bumping size, so a crash between the two merely
/// loses the in-flight element — never exposes a torn one.
template <typename T>
class PVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "persistent elements must be trivially copyable");

 public:
  static constexpr std::uint32_t kPersistentTypeId = 0x50564543;  // "PVEC"

  /// Allocates a vector for at most `capacity` elements. Returns
  /// nullptr when the heap is exhausted.
  static PVector* Create(PersistentHeap* heap, std::uint64_t capacity) {
    void* mem = heap->Alloc(AllocationSize(capacity), kPersistentTypeId);
    if (mem == nullptr) return nullptr;
    auto* vector = new (mem) PVector();
    // Pre-publication init of an unreachable object; a crash here
    // leaks the block to the recovery GC.
    vector->capacity_ = capacity;  // tsp-lint: allow(raw-store)
    vector->size_.store(0, std::memory_order_relaxed);
    return vector;
  }

  static std::size_t AllocationSize(std::uint64_t capacity) {
    return sizeof(PVector) + capacity * sizeof(T);
  }

  /// Appends a copy of `value`. Returns false when full.
  bool push_back(const T& value) {
    const std::uint64_t index = size_.load(std::memory_order_relaxed);
    if (index >= capacity_) return false;
    std::memcpy(&data()[index], &value, sizeof(T));  // initialize...
    size_.store(index + 1, std::memory_order_release);  // ...then publish
    return true;
  }

  /// Removes the last element (a single size store; the element bytes
  /// stay behind but are unreachable). No-op when empty.
  void pop_back() {
    const std::uint64_t current = size_.load(std::memory_order_relaxed);
    if (current > 0) size_.store(current - 1, std::memory_order_release);
  }

  T& operator[](std::uint64_t index) {
    TSP_DCHECK_LT(index, size());
    return data()[index];
  }
  const T& operator[](std::uint64_t index) const {
    TSP_DCHECK_LT(index, size());
    return data()[index];
  }

  std::uint64_t size() const {
    return size_.load(std::memory_order_acquire);
  }
  std::uint64_t capacity() const { return capacity_; }
  bool empty() const { return size() == 0; }

  T* begin() { return data(); }
  T* end() { return data() + size(); }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }

  /// Registers the (leaf) trace entry. Call once per process if PVector
  /// objects are reachable from the root.
  static void RegisterType(TypeRegistry* registry) {
    registry->Register(TypeInfo{kPersistentTypeId, "PVector", nullptr});
  }

 private:
  PVector() = default;

  T* data() {
    return reinterpret_cast<T*>(reinterpret_cast<char*>(this) +
                                sizeof(PVector));
  }
  const T* data() const {
    return reinterpret_cast<const T*>(reinterpret_cast<const char*>(this) +
                                      sizeof(PVector));
  }

  std::uint64_t capacity_ = 0;
  std::atomic<std::uint64_t> size_{0};
};

/// Fixed-capacity persistent byte string. Assign writes the new bytes
/// into the *inactive* of two buffers, then publishes buffer index and
/// length with one atomic store — so even overwrites of a longer string
/// by a shorter one are crash-atomic (a plain single-buffer design
/// would be torn when old bytes shine through a partial write).
class PString {
 public:
  static constexpr std::uint32_t kPersistentTypeId = 0x50535452;  // "PSTR"

  static PString* Create(PersistentHeap* heap, std::uint32_t capacity) {
    void* mem = heap->Alloc(AllocationSize(capacity), kPersistentTypeId);
    if (mem == nullptr) return nullptr;
    auto* string = new (mem) PString();
    // Pre-publication init, as in PVector::Create above.
    string->capacity_ = capacity;  // tsp-lint: allow(raw-store)
    string->state_.store(0, std::memory_order_relaxed);
    return string;
  }

  static std::size_t AllocationSize(std::uint32_t capacity) {
    return sizeof(PString) + 2 * static_cast<std::size_t>(capacity);
  }

  /// Crash-atomically replaces the contents. Returns false if `text`
  /// exceeds the capacity.
  bool Assign(std::string_view text) {
    if (text.size() > capacity_) return false;
    const std::uint64_t state = state_.load(std::memory_order_relaxed);
    const std::uint32_t next_buffer =
        static_cast<std::uint32_t>((state >> 32) ^ 1);
    std::memcpy(buffer(next_buffer), text.data(), text.size());
    // Publish length and buffer selector in one 64-bit store.
    state_.store((static_cast<std::uint64_t>(next_buffer) << 32) |
                     static_cast<std::uint32_t>(text.size()),
                 std::memory_order_release);
    return true;
  }

  std::string_view view() const {
    const std::uint64_t state = state_.load(std::memory_order_acquire);
    const std::uint32_t active = static_cast<std::uint32_t>(state >> 32);
    const std::uint32_t length = static_cast<std::uint32_t>(state);
    return std::string_view(buffer(active), length);
  }

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(
        state_.load(std::memory_order_acquire));
  }
  std::uint32_t capacity() const { return capacity_; }
  bool empty() const { return size() == 0; }

  static void RegisterType(TypeRegistry* registry) {
    registry->Register(TypeInfo{kPersistentTypeId, "PString", nullptr});
  }

 private:
  PString() = default;

  char* buffer(std::uint32_t which) {
    return reinterpret_cast<char*>(this) + sizeof(PString) +
           static_cast<std::size_t>(which) * capacity_;
  }
  const char* buffer(std::uint32_t which) const {
    return reinterpret_cast<const char*>(this) + sizeof(PString) +
           static_cast<std::size_t>(which) * capacity_;
  }

  std::uint32_t capacity_ = 0;
  std::uint32_t reserved_ = 0;
  /// (active buffer << 32) | length.
  std::atomic<std::uint64_t> state_{0};
};

#pragma GCC diagnostic pop

}  // namespace tsp::pheap

#endif  // TSP_PHEAP_CONTAINERS_H_
