#include "pheap/type_registry.h"

#include "common/logging.h"

namespace tsp::pheap {

void TypeRegistry::Register(TypeInfo info) {
  TSP_CHECK_NE(info.type_id, 0u) << "type id 0 is reserved for leaf objects";
  types_[info.type_id] = std::move(info);
}

const TypeInfo* TypeRegistry::Find(std::uint32_t type_id) const {
  const auto it = types_.find(type_id);
  return it == types_.end() ? nullptr : &it->second;
}

}  // namespace tsp::pheap
