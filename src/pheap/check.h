// Copyright 2026 The TSP Authors.
// Offline heap integrity checker (in the spirit of `db_check` tools):
// validates region header sanity, free-list well-formedness, and
// reachable-object health, and verifies that live and free space never
// overlap. Intended for quiesced heaps — after recovery, before/after
// test workloads, or from diagnostic tooling.

#ifndef TSP_PHEAP_CHECK_H_
#define TSP_PHEAP_CHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/findings.h"
#include "pheap/heap.h"
#include "pheap/type_registry.h"

namespace tsp::pheap {

/// Result of a CheckHeap run.
struct CheckReport {
  bool ok = false;
  std::uint64_t reachable_objects = 0;
  std::uint64_t reachable_bytes = 0;
  std::uint64_t free_blocks = 0;
  std::uint64_t free_bytes = 0;
  /// Bytes between the arena start and the bump pointer that are
  /// neither reachable nor on a free list (leaked until the next GC).
  std::uint64_t unaccounted_bytes = 0;
  /// Undo-log coverage (0/0 when the runtime area holds no formatted
  /// Atlas log, e.g. a pheap-only heap).
  std::uint64_t log_rings_scanned = 0;
  std::uint64_t log_entries_scanned = 0;
  /// First problems found (capped at 16). Entries may carry a
  /// "rule-slug: " prefix naming the check that fired.
  std::vector<std::string> problems;
  /// Every problem ever recorded, including ones dropped past the cap;
  /// `ok` is `problems_total == 0`, never fooled by truncation.
  std::uint64_t problems_total = 0;

  std::string ToString() const;
  /// Emits each retained problem as a Finding (tool "heap-check"); the
  /// rule is taken from the problem's slug prefix when present.
  void AppendTo(report::FindingSink* sink) const;
};

/// Validates `heap`. Requires a quiesced heap (no concurrent mutators).
/// Never modifies the heap.
CheckReport CheckHeap(const PersistentHeap& heap,
                      const TypeRegistry& registry);

}  // namespace tsp::pheap

#endif  // TSP_PHEAP_CHECK_H_
