// Copyright 2026 The TSP Authors.
// Real-crash fault injection (paper §5.1):
//
// "Our fault-injection methodology mimics the effects of a sudden
// process crash caused by an application software error ... We abruptly
// and simultaneously terminate all threads in a running process by
// sending the process a SIGKILL signal, which cannot be caught or
// ignored. Recovery code then attempts to locate the map in the
// persistent heap by starting from the heap's root pointer, traverse
// the contents of the map, and verify the integrity of the map by
// testing the invariants of Equations 1 and 2."
//
// Each cycle forks a worker process that opens the persistent heap
// (recovering if needed) and runs the §5.1 workload until it is
// SIGKILLed at a random time; the parent then opens the heap, runs
// recovery, and checks the invariants.

#ifndef TSP_FAULTSIM_CRASH_HARNESS_H_
#define TSP_FAULTSIM_CRASH_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "workload/map_session.h"
#include "workload/workload.h"

namespace tsp::faultsim {

struct CrashCycleOptions {
  workload::MapSession::Config session;
  workload::WorkloadOptions workload;
  /// Number of kill/recover cycles.
  int cycles = 10;
  /// The worker runs for a uniform-random time in this window before
  /// the SIGKILL lands.
  int min_run_ms = 20;
  int max_run_ms = 120;
  std::uint64_t seed = 42;
  /// Start each cycle from a fresh heap (the paper's methodology:
  /// every injected crash is an independent experiment whose recovered
  /// state is checked against Eq. (1)/(2); those invariants are
  /// statements about a single run from an empty map — the crash-
  /// interrupted iteration is inherently ambiguous to a resumed run).
  bool reset_between_cycles = true;
  /// Arm TSPSan in the forked worker: the arena is kept PROT_READ and
  /// every store outside the logged-store machinery aborts the worker
  /// (which the harness then reports as a premature exit instead of the
  /// expected SIGKILL). Also armed when TSP_SANITIZE_PERSIST is set in
  /// the environment. TSPSan guards one region per process, so with
  /// session.shards > 1 only shard 0 is armed; the other shards run
  /// unchecked (their stores still hit the same logged-store paths).
  bool enable_tspsan = false;
  /// Arm TSPRace (the persistence-race/lock-order detector) in the
  /// forked worker: a lockset violation exits with a distinct code the
  /// harness reports instead of the expected SIGKILL. Also armed when
  /// TSP_RACE is set in the environment. Compiled out under
  /// -DTSP_ANALYSIS=OFF (the worker then runs unchecked).
  bool enable_race_detector = false;
  /// Print one line per cycle.
  bool verbose = false;
};

struct CrashCycleReport {
  int cycles_run = 0;
  int recoveries_with_rollback = 0;
  std::uint64_t total_stores_undone = 0;
  std::uint64_t total_ocses_rolled_back = 0;
  std::uint64_t total_gc_reclaimed_bytes = 0;
  /// Sum over cycles of completed iterations observed at recovery (Σ c2).
  std::uint64_t final_completed_iterations = 0;
  bool all_ok = false;
  std::vector<std::string> errors;

  std::string ToString() const;
};

/// Runs the kill/recover loop. The caller's process must be able to
/// fork (do not call with other threads running in exotic states).
/// Never throws; failures are reported in the returned report.
CrashCycleReport RunCrashCycles(const CrashCycleOptions& options);

}  // namespace tsp::faultsim

#endif  // TSP_FAULTSIM_CRASH_HARNESS_H_
