#include "faultsim/crash_harness.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "analysis/race_detector.h"
#include "atlas/log_layout.h"
#include "common/logging.h"
#include "common/random.h"
#include "obs/metrics.h"
#include "obs/trace_layout.h"
#include "obs/trace_reader.h"
#include "pheap/heap.h"
#include "pheap/sanitizer.h"

namespace tsp::faultsim {
namespace {

/// Decodes the tail of the crashed session's flight recorder for one
/// shard file. Must run against a read-only mapping BEFORE the session is
/// reopened: reopening runs recovery and restarts the workload, whose
/// threads reclaim trace rings. Empty string when the heap has no
/// readable recorder (legacy layout, tracing off, tiny runtime area).
std::string TraceTailSummary(const std::string& path,
                             std::size_t max_events) {
  auto heap = pheap::PersistentHeap::OpenReadOnly(path);
  if (!heap.ok()) return "";
  const obs::TraceReader reader((*heap)->runtime_area(),
                                (*heap)->runtime_area_size());
  if (!reader.valid()) return "";
  const std::vector<obs::TraceEvent> merged = reader.MergedEvents();
  if (merged.empty()) return "";
  std::string out = "recorder tail of " + path + " (" +
                    std::to_string(merged.size()) + " events";
  for (const obs::OpenOcsSpan& span : reader.OpenOcsSpans()) {
    out += "; open OCS thread=" +
           std::to_string(atlas::UnpackThread(span.packed_ocs)) +
           " ocs=" + std::to_string(atlas::UnpackOcs(span.packed_ocs)) +
           " lock=" + std::to_string(span.lock_id);
  }
  out += "):";
  const std::size_t first =
      merged.size() > max_events ? merged.size() - max_events : 0;
  for (std::size_t i = first; i < merged.size(); ++i) {
    const obs::TraceEvent& e = merged[i];
    out += "\n      [ring " + std::to_string(e.thread_id) + "] " +
           obs::EventCodeName(static_cast<obs::EventCode>(e.code)) +
           " arg0=" + std::to_string(e.arg0) +
           " arg1=" + std::to_string(e.arg1) +
           " aux=" + std::to_string(e.aux);
  }
  return out;
}

// Entry point of the forked worker: open the heap (recovering if the
// previous cycle crashed it), then hammer the map until killed.
[[noreturn]] void WorkerMain(const CrashCycleOptions& options) {
  auto session = workload::MapSession::OpenOrCreate(options.session);
  if (!session.ok()) {
    TSP_LOG(ERROR) << "worker failed to open session: "
                   << session.status().ToString();
    _exit(2);
  }
  if (options.enable_tspsan || pheap::TspSanitizer::enabled_by_env()) {
    // Registry must outlive the sanitizer; the worker never disables it
    // (it dies by SIGKILL), so give it static storage.
    static pheap::TypeRegistry registry;
    workload::MapSession::RegisterAllTypes(&registry);
    pheap::TspSanitizer::Options san;
    san.registry = &registry;
    san.violation_exit_code = 4;  // distinguishes a TSPSan trap below
    Status status = pheap::TspSanitizer::Enable(
        (*session)->heap()->region(), san);
    if (!status.ok()) {
      TSP_LOG(ERROR) << "worker failed to enable TSPSan: "
                     << status.ToString();
      _exit(2);
    }
  }
  if ((options.enable_race_detector ||
       analysis::RaceDetector::enabled_by_env()) &&
      analysis::RaceDetector::compiled_in() &&
      !analysis::RaceDetector::active()) {
    std::vector<analysis::ArenaInfo> arenas;
    for (int shard = 0; shard < (*session)->shard_count(); ++shard) {
      const pheap::MappedRegion* region = (*session)->heap(shard)->region();
      analysis::ArenaInfo arena;
      arena.base = region->base();
      arena.size = region->size();
      arena.arena_offset = region->header()->arena_offset;
      arena.arena_size = region->header()->arena_size;
      arena.name = "heap" + std::to_string(shard);
      arenas.push_back(std::move(arena));
    }
    analysis::RaceDetector::Options race;
    race.violation_exit_code = 5;  // distinguishes a TSPRace trap below
    Status status = analysis::RaceDetector::Enable(arenas, race);
    if (!status.ok()) {
      TSP_LOG(ERROR) << "worker failed to enable TSPRace: "
                     << status.ToString();
      _exit(2);
    }
  }
  std::atomic<bool> stop{false};  // never set: we run until SIGKILL
  workload::RunMapWorkload((*session)->map(), options.workload, &stop);
  _exit(3);  // unreachable unless the workload somehow finishes
}

}  // namespace

std::string CrashCycleReport::ToString() const {
  std::string out = "crash cycles: " + std::to_string(cycles_run);
  out += all_ok ? " ALL RECOVERIES CONSISTENT" : " FAILURES DETECTED";
  out += "\n  recoveries with rollback: " +
         std::to_string(recoveries_with_rollback);
  out += "\n  OCSes rolled back:        " +
         std::to_string(total_ocses_rolled_back);
  out += "\n  undo records applied:     " +
         std::to_string(total_stores_undone);
  out += "\n  GC bytes reclaimed:       " +
         std::to_string(total_gc_reclaimed_bytes);
  out += "\n  completed iterations:     " +
         std::to_string(final_completed_iterations);
  for (const std::string& error : errors) {
    out += "\n  ERROR: " + error;
  }
  return out;
}

CrashCycleReport RunCrashCycles(const CrashCycleOptions& options) {
  CrashCycleReport report;
  Random rng(options.seed);

  for (int cycle = 0; cycle < options.cycles; ++cycle) {
    const pid_t pid = fork();
    if (pid < 0) {
      report.errors.push_back("fork failed");
      break;
    }
    if (pid == 0) {
      WorkerMain(options);  // never returns
    }

    const int window = options.max_run_ms - options.min_run_ms + 1;
    const int run_ms =
        options.min_run_ms + static_cast<int>(rng.Uniform(window));
    std::this_thread::sleep_for(std::chrono::milliseconds(run_ms));

    // The uncatchable kill: every thread of the worker halts at once.
    kill(pid, SIGKILL);
    int status = 0;
    waitpid(pid, &status, 0);
    ++report.cycles_run;
    TSP_COUNTER_INC("faultsim.cycles");

    // Snapshot the flight recorder of every shard now, before the
    // reopen below recovers the heap and its threads recycle the rings.
    std::string trace_tail;
    for (const std::string& path :
         workload::MapSession::ShardPaths(options.session)) {
      const std::string shard_tail = TraceTailSummary(path, 16);
      if (shard_tail.empty()) continue;
      if (!trace_tail.empty()) trace_tail += "\n    ";
      trace_tail += shard_tail;
    }
    auto with_trace = [&trace_tail](std::string error) {
      if (!trace_tail.empty()) error += "\n    " + trace_tail;
      return error;
    };
    if (WIFEXITED(status)) {
      // The worker exited before the kill (e.g., setup failure, or a
      // sanitizer trap: 4 = TSPSan unlogged store, 5 = TSPRace
      // persistence-race violation).
      const int code = WEXITSTATUS(status);
      std::string reason = "worker exited with status " +
                           std::to_string(code) +
                           " instead of being killed";
      if (code == 4) reason += " (TSPSan violation)";
      if (code == 5) reason += " (TSPRace violation)";
      report.errors.push_back("cycle " + std::to_string(cycle) + ": " +
                              reason);
      continue;
    }

    // Recover in-process and verify.
    auto session = workload::MapSession::OpenOrCreate(options.session);
    if (!session.ok()) {
      report.errors.push_back(with_trace(
          "cycle " + std::to_string(cycle) +
          ": recovery open failed: " + session.status().ToString()));
      continue;
    }
    if (!(*session)->recovered()) {
      report.errors.push_back(with_trace(
          "cycle " + std::to_string(cycle) +
          ": heap unexpectedly clean after SIGKILL"));
    }
    const atlas::RecoveryStats& rec = (*session)->recovery_stats();
    if (rec.ocses_incomplete + rec.ocses_cascaded > 0) {
      ++report.recoveries_with_rollback;
    }
    report.total_stores_undone += rec.stores_undone;
    report.total_ocses_rolled_back +=
        rec.ocses_incomplete + rec.ocses_cascaded;
    report.total_gc_reclaimed_bytes +=
        (*session)->gc_stats().free_bytes +
        (*session)->gc_stats().tail_reclaimed_bytes;

    const workload::InvariantReport invariants =
        workload::CheckMapInvariants(*(*session)->map(),
                                     options.workload.threads);
    if (!invariants.ok) {
      report.errors.push_back(with_trace("cycle " + std::to_string(cycle) +
                                         ": " + invariants.ToString()));
    } else {
      report.final_completed_iterations += invariants.completed_iterations;
    }
    if (options.verbose) {
      TSP_LOG(WARNING) << "cycle " << cycle << " [" << run_ms << "ms] "
                       << workload::MapVariantName(options.session.variant) << ": "
                       << invariants.ToString() << "; "
                       << rec.ToString();
    }
    (*session)->CloseClean();
    session->reset();
    if (options.reset_between_cycles) {
      for (const std::string& path :
           workload::MapSession::ShardPaths(options.session)) {
        unlink(path.c_str());
      }
    }
  }

  report.all_ok = report.errors.empty() && report.cycles_run == options.cycles;
  return report;
}

}  // namespace tsp::faultsim
