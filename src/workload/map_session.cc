#include "workload/map_session.h"

#include "common/logging.h"

namespace tsp::workload {

const char* MapVariantName(MapVariant variant) {
  switch (variant) {
    case MapVariant::kMutexNative:
      return "mutex-native";
    case MapVariant::kMutexLogOnly:
      return "mutex-atlas-log-only";
    case MapVariant::kMutexLogFlush:
      return "mutex-atlas-log+flush";
    case MapVariant::kLockFreeSkipList:
      return "lockfree-skiplist";
  }
  return "unknown";
}

void MapSession::RegisterAllTypes(pheap::TypeRegistry* registry) {
  registry->Register(pheap::TypeInfo{
      SessionRoot::kPersistentTypeId, "MapSessionRoot",
      [](const void* payload, const pheap::PointerVisitor& visit) {
        visit(static_cast<const SessionRoot*>(payload)->map_root);
      }});
  maps::MutexHashMap::RegisterTypes(registry);
  lockfree::SkipListMap::RegisterTypes(registry);
}

StatusOr<std::unique_ptr<MapSession>> MapSession::OpenOrCreate(
    const Config& config) {
  auto session = std::unique_ptr<MapSession>(new MapSession(config));
  TSP_RETURN_IF_ERROR(session->Init());
  return session;
}

Status MapSession::Init() {
  pheap::RegionOptions region_options;
  region_options.size = config_.heap_size;
  region_options.base_address = config_.base_address;
  region_options.runtime_area_size = config_.runtime_area_size;
  TSP_ASSIGN_OR_RETURN(
      heap_, pheap::PersistentHeap::OpenOrCreate(config_.path,
                                                 region_options));

  if (heap_->needs_recovery()) {
    pheap::TypeRegistry registry;
    RegisterAllTypes(&registry);
    TSP_ASSIGN_OR_RETURN(recovery_, atlas::RecoverHeap(heap_.get(),
                                                       registry));
    recovered_ = true;
  }

  // Locate or create the session root.
  auto* root = heap_->root<SessionRoot>();
  if (root == nullptr) {
    root = heap_->New<SessionRoot>();
    if (root == nullptr) {
      return Status::ResourceExhausted("heap too small for session root");
    }
    root->variant_tag = static_cast<std::uint32_t>(config_.variant);
    root->reserved = 0;
    root->map_root = nullptr;
    heap_->set_root(root);
  } else if (root->variant_tag !=
             static_cast<std::uint32_t>(config_.variant)) {
    return Status::FailedPrecondition(
        std::string("heap holds a different map variant: ") +
        MapVariantName(static_cast<MapVariant>(root->variant_tag)));
  }

  // Attach the Atlas runtime for the logged variants.
  if (config_.variant == MapVariant::kMutexLogOnly ||
      config_.variant == MapVariant::kMutexLogFlush) {
    const PersistencePolicy policy =
        config_.variant == MapVariant::kMutexLogOnly
            ? PersistencePolicy::TspLogOnly()
            : PersistencePolicy::SyncFlush();
    atlas::AtlasRuntime::Options runtime_options;
    runtime_options.prune_interval_us = config_.prune_interval_us;
    runtime_options.seq_block_size = config_.seq_block_size;
    runtime_ = std::make_unique<atlas::AtlasRuntime>(heap_.get(), policy,
                                                     runtime_options);
    TSP_RETURN_IF_ERROR(runtime_->Initialize());
  }

  // Attach the map implementation.
  switch (config_.variant) {
    case MapVariant::kMutexNative:
    case MapVariant::kMutexLogOnly:
    case MapVariant::kMutexLogFlush: {
      auto* map_root = static_cast<maps::HashMapRoot*>(root->map_root);
      if (map_root == nullptr) {
        map_root = maps::MutexHashMap::CreateRoot(heap_.get(),
                                                  config_.hash_options);
        if (map_root == nullptr) {
          return Status::ResourceExhausted("heap too small for bucket array");
        }
        root->map_root = map_root;
      }
      map_ = std::make_unique<maps::MutexHashMap>(
          heap_.get(), map_root, runtime_.get(), config_.hash_options);
      break;
    }
    case MapVariant::kLockFreeSkipList: {
      auto* map_root = static_cast<lockfree::SkipListRoot*>(root->map_root);
      if (map_root == nullptr) {
        map_root = lockfree::SkipListMap::CreateRoot(heap_.get());
        if (map_root == nullptr) {
          return Status::ResourceExhausted("heap too small for skip list");
        }
        root->map_root = map_root;
      }
      skiplist_ = std::make_unique<lockfree::SkipListMap>(heap_.get(),
                                                          map_root);
      map_ = std::make_unique<maps::SkipListMapAdapter>(skiplist_.get());
      break;
    }
  }
  return Status::OK();
}

void MapSession::CloseClean() {
  map_.reset();
  skiplist_.reset();
  runtime_.reset();
  if (heap_ != nullptr) heap_->CloseClean();
}

MapSession::~MapSession() = default;

}  // namespace tsp::workload
