#include "workload/map_session.h"

#include <cstdlib>

#include "analysis/race_detector.h"
#include "common/logging.h"
#include "maps/sharded_map.h"

namespace tsp::workload {
namespace {

void AppendCapped(const std::vector<std::uint64_t>& from,
                  std::vector<std::uint64_t>* to) {
  for (const std::uint64_t id : from) {
    if (to->size() >= atlas::RecoveryStats::kMaxReportedRollbacks) return;
    to->push_back(id);
  }
}

void AccumulateRecovery(const atlas::FullRecoveryResult& shard,
                        atlas::FullRecoveryResult* total) {
  total->atlas.performed |= shard.atlas.performed;
  total->atlas.rings_scanned += shard.atlas.rings_scanned;
  total->atlas.entries_scanned += shard.atlas.entries_scanned;
  total->atlas.ocses_seen += shard.atlas.ocses_seen;
  total->atlas.ocses_incomplete += shard.atlas.ocses_incomplete;
  total->atlas.ocses_cascaded += shard.atlas.ocses_cascaded;
  total->atlas.stores_undone += shard.atlas.stores_undone;
  AppendCapped(shard.atlas.rolled_back_incomplete,
               &total->atlas.rolled_back_incomplete);
  AppendCapped(shard.atlas.rolled_back_cascaded,
               &total->atlas.rolled_back_cascaded);
  total->gc.live_objects += shard.gc.live_objects;
  total->gc.live_bytes += shard.gc.live_bytes;
  total->gc.free_blocks += shard.gc.free_blocks;
  total->gc.free_bytes += shard.gc.free_bytes;
  total->gc.tail_reclaimed_bytes += shard.gc.tail_reclaimed_bytes;
  total->gc.sliver_bytes += shard.gc.sliver_bytes;
  total->gc.invalid_pointers += shard.gc.invalid_pointers;
}

}  // namespace

const char* MapVariantName(MapVariant variant) {
  switch (variant) {
    case MapVariant::kMutexNative:
      return "mutex-native";
    case MapVariant::kMutexLogOnly:
      return "mutex-atlas-log-only";
    case MapVariant::kMutexLogFlush:
      return "mutex-atlas-log+flush";
    case MapVariant::kLockFreeSkipList:
      return "lockfree-skiplist";
  }
  return "unknown";
}

void MapSession::RegisterAllTypes(pheap::TypeRegistry* registry) {
  registry->Register(pheap::TypeInfo{
      SessionRoot::kPersistentTypeId, "MapSessionRoot",
      [](const void* payload, const pheap::PointerVisitor& visit) {
        visit(static_cast<const SessionRoot*>(payload)->map_root);
      }});
  maps::MutexHashMap::RegisterTypes(registry);
  lockfree::SkipListMap::RegisterTypes(registry);
}

std::vector<std::string> MapSession::ShardPaths(const Config& config) {
  if (config.shards <= 1) return {config.path};
  std::vector<std::string> paths;
  paths.reserve(config.shards);
  paths.push_back(config.path);
  for (int i = 1; i < config.shards; ++i) {
    paths.push_back(config.path + ".shard" + std::to_string(i));
  }
  return paths;
}

StatusOr<std::unique_ptr<MapSession>> MapSession::OpenOrCreate(
    const Config& config) {
  auto session = std::unique_ptr<MapSession>(new MapSession(config));
  TSP_RETURN_IF_ERROR(session->Init());
  return session;
}

Status MapSession::Init() {
  if (config_.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  if (config_.shards > 1 && config_.base_address != 0) {
    return Status::InvalidArgument(
        "sharded sessions place every shard in its own address slot; "
        "leave base_address at 0");
  }

  pheap::RegionOptions region_options;
  region_options.size = config_.heap_size;
  region_options.base_address = config_.base_address;
  region_options.runtime_area_size = config_.runtime_area_size;
  region_options.backend = config_.backend;

  bool any_needs_recovery = false;
  for (const std::string& path : ShardPaths(config_)) {
    TSP_ASSIGN_OR_RETURN(
        std::unique_ptr<pheap::PersistentHeap> heap,
        pheap::PersistentHeap::OpenOrCreate(path, region_options));
    any_needs_recovery |= heap->needs_recovery();
    heaps_.push_back(std::move(heap));
  }

  if (any_needs_recovery) {
    pheap::TypeRegistry registry;
    RegisterAllTypes(&registry);
    std::vector<pheap::PersistentHeap*> raw;
    raw.reserve(heaps_.size());
    for (const auto& heap : heaps_) raw.push_back(heap.get());
    std::vector<atlas::ShardRecovery> recoveries =
        atlas::RecoverHeapsParallel(raw, registry,
                                    config_.recovery_threads);
    for (std::size_t i = 0; i < recoveries.size(); ++i) {
      if (!recoveries[i].status.ok()) {
        return Status(recoveries[i].status.code(),
                      "recovery of shard " + std::to_string(i) +
                          " failed: " + recoveries[i].status.message());
      }
      AccumulateRecovery(recoveries[i].result, &recovery_);
    }
    recovered_ = true;
  }

  if (config_.shards == 1) {
    TSP_ASSIGN_OR_RETURN(map_, InitShard(0));
  } else {
    std::vector<std::unique_ptr<maps::Map>> shard_maps;
    shard_maps.reserve(heaps_.size());
    for (int i = 0; i < static_cast<int>(heaps_.size()); ++i) {
      TSP_ASSIGN_OR_RETURN(std::unique_ptr<maps::Map> shard_map,
                           InitShard(i));
      shard_maps.push_back(std::move(shard_map));
    }
    map_ = std::make_unique<maps::ShardedMap>(std::move(shard_maps));
  }

  // TSP_RACE=1: arm TSPRace over every shard arena. Arming happens
  // last — after recovery (rollback is pre-session history) and after
  // the maps registered their non-blocking ranges.
  if (analysis::RaceDetector::enabled_by_env() &&
      !analysis::RaceDetector::active()) {
    std::vector<analysis::ArenaInfo> arenas;
    for (std::size_t i = 0; i < heaps_.size(); ++i) {
      const pheap::MappedRegion* region = heaps_[i]->region();
      analysis::ArenaInfo arena;
      arena.base = region->base();
      arena.size = region->size();
      arena.arena_offset = region->header()->arena_offset;
      arena.arena_size = region->header()->arena_size;
      arena.name = "heap" + std::to_string(i);
      arenas.push_back(std::move(arena));
    }
    const Status status = analysis::RaceDetector::Enable(arenas);
    if (status.ok()) {
      race_detector_armed_ = true;
    } else {
      TSP_LOG(WARNING) << "TSP_RACE set but TSPRace did not arm: "
                       << status.ToString();
    }
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<maps::Map>> MapSession::InitShard(int shard) {
  pheap::PersistentHeap* heap = heaps_[shard].get();

  // Locate or create the shard's session root.
  auto* root = heap->root<SessionRoot>();
  if (root == nullptr) {
    root = heap->New<SessionRoot>();
    if (root == nullptr) {
      return Status::ResourceExhausted("heap too small for session root");
    }
    root->variant_tag = static_cast<std::uint32_t>(config_.variant);
    root->shard_count = static_cast<std::uint32_t>(config_.shards);
    root->map_root = nullptr;
    heap->set_root(root);
  } else {
    if (root->variant_tag != static_cast<std::uint32_t>(config_.variant)) {
      return Status::FailedPrecondition(
          std::string("heap holds a different map variant: ") +
          MapVariantName(static_cast<MapVariant>(root->variant_tag)));
    }
    const std::uint32_t recorded =
        root->shard_count == 0 ? 1 : root->shard_count;
    if (recorded != static_cast<std::uint32_t>(config_.shards)) {
      return Status::FailedPrecondition(
          "heap was created with " + std::to_string(recorded) +
          " shard(s) but reopened with " + std::to_string(config_.shards) +
          "; resharding persistent data is not supported");
    }
  }

  // Attach the Atlas runtime for the logged variants.
  atlas::AtlasRuntime* runtime = nullptr;
  if (config_.variant == MapVariant::kMutexLogOnly ||
      config_.variant == MapVariant::kMutexLogFlush) {
    const PersistencePolicy policy =
        config_.variant == MapVariant::kMutexLogOnly
            ? PersistencePolicy::TspLogOnly()
            : PersistencePolicy::SyncFlush();
    atlas::AtlasRuntime::Options runtime_options;
    runtime_options.prune_interval_us = config_.prune_interval_us;
    runtime_options.seq_block_size = config_.seq_block_size;
    runtimes_.push_back(std::make_unique<atlas::AtlasRuntime>(
        heap, policy, runtime_options));
    runtime = runtimes_.back().get();
    TSP_RETURN_IF_ERROR(runtime->Initialize());
  }

  // Attach the map implementation.
  switch (config_.variant) {
    case MapVariant::kMutexNative:
    case MapVariant::kMutexLogOnly:
    case MapVariant::kMutexLogFlush: {
      auto* map_root = static_cast<maps::HashMapRoot*>(root->map_root);
      if (map_root == nullptr) {
        map_root =
            maps::MutexHashMap::CreateRoot(heap, config_.hash_options);
        if (map_root == nullptr) {
          return Status::ResourceExhausted("heap too small for bucket array");
        }
        root->map_root = map_root;
      }
      return std::unique_ptr<maps::Map>(std::make_unique<maps::MutexHashMap>(
          heap, map_root, runtime, config_.hash_options));
    }
    case MapVariant::kLockFreeSkipList: {
      auto* map_root = static_cast<lockfree::SkipListRoot*>(root->map_root);
      if (map_root == nullptr) {
        map_root = lockfree::SkipListMap::CreateRoot(heap);
        if (map_root == nullptr) {
          return Status::ResourceExhausted("heap too small for skip list");
        }
        root->map_root = map_root;
      }
      skiplists_.push_back(
          std::make_unique<lockfree::SkipListMap>(heap, map_root));
      return std::unique_ptr<maps::Map>(
          std::make_unique<maps::SkipListMapAdapter>(
              skiplists_.back().get()));
    }
  }
  return Status::Internal("unreachable map variant");
}

void MapSession::DisarmRaceDetector() {
  if (!race_detector_armed_) return;
  race_detector_armed_ = false;
  if (const char* graph_path = std::getenv("TSP_RACE_GRAPH");
      graph_path != nullptr && graph_path[0] != '\0') {
    std::string error;
    if (!analysis::RaceDetector::SaveLockGraph(graph_path, &error)) {
      TSP_LOG(WARNING) << "TSP_RACE_GRAPH save failed: " << error;
    }
  }
  analysis::RaceDetector::Disable();
  const std::size_t errors = analysis::RaceDetector::error_count();
  if (errors != 0) {
    TSP_LOG(ERROR) << "TSPRace found " << errors
                   << " persistence-race violation(s) in this session";
  }
}

void MapSession::CloseClean() {
  // Disarm before the maps and heaps go away: the detector's shadow
  // spans the heap mappings, and teardown stores must not be checked
  // against a dying lockset state.
  DisarmRaceDetector();
  map_.reset();
  skiplists_.clear();
  runtimes_.clear();
  for (const auto& heap : heaps_) {
    if (heap != nullptr) heap->CloseClean();
  }
}

MapSession::~MapSession() { DisarmRaceDetector(); }

}  // namespace tsp::workload
