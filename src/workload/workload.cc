#include "workload/workload.h"

#include <chrono>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace tsp::workload {

WorkloadResult RunMapWorkload(maps::Map* map, const WorkloadOptions& options,
                              const std::atomic<bool>* stop) {
  TSP_CHECK_GT(options.threads, 0);
  TSP_CHECK_GT(options.high_range, 0u);

  std::atomic<std::uint64_t> total_iterations{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(options.threads);

  for (int t = 0; t < options.threads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(options.seed * 0x9E3779B97F4A7C15ULL +
                 static_cast<std::uint64_t>(t));
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      std::uint64_t done = 0;
      for (std::uint64_t i = 1;; ++i) {
        if (stop != nullptr) {
          if (stop->load(std::memory_order_relaxed)) break;
        } else if (i > options.iterations_per_thread) {
          break;
        }
        // The three atomic, isolated steps of §5.1.
        map->Put(C1Key(t), i);
        map->IncrementBy(HighKey(rng.Uniform(options.high_range)), 1);
        map->Put(C2Key(t), i);
        ++done;
      }
      total_iterations.fetch_add(done, std::memory_order_relaxed);
      map->OnThreadExit();
    });
  }

  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  const auto end = std::chrono::steady_clock::now();

  WorkloadResult result;
  result.total_iterations = total_iterations.load();
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.millions_iter_per_sec =
      result.seconds > 0
          ? static_cast<double>(result.total_iterations) / result.seconds / 1e6
          : 0;
  return result;
}

std::string InvariantReport::ToString() const {
  std::string out = ok ? "OK" : ("VIOLATION: " + error);
  out += " (sum_c1=" + std::to_string(sum_c1);
  out += " sum_c2=" + std::to_string(sum_c2);
  out += " sum_high=" + std::to_string(sum_high) + ")";
  return out;
}

InvariantReport CheckMapInvariants(const maps::Map& map, int threads) {
  InvariantReport report;
  std::vector<std::uint64_t> c1(threads, 0), c2(threads, 0);
  std::uint64_t sum_high = 0;

  map.ForEach([&](std::uint64_t key, std::uint64_t value) {
    if (key >= kHighKeyBase) {
      sum_high += value;
    } else if (key < static_cast<std::uint64_t>(threads) * 2) {
      if (key % 2 == 0) {
        c1[key / 2] = value;
      } else {
        c2[key / 2] = value;
      }
    }
  });

  for (int t = 0; t < threads; ++t) {
    report.sum_c1 += c1[t];
    report.sum_c2 += c2[t];
    // Per-thread strengthening of Eq. (1).
    if (c1[t] < c2[t] || c1[t] - c2[t] > 1) {
      report.error = "thread " + std::to_string(t) + ": c1=" +
                     std::to_string(c1[t]) + " c2=" + std::to_string(c2[t]);
      return report;
    }
  }
  report.sum_high = sum_high;
  report.completed_iterations = report.sum_c2;

  // Eq. (1): Σc1 − Σc2 ≤ T (non-negativity follows per thread).
  if (report.sum_c1 - report.sum_c2 > static_cast<std::uint64_t>(threads)) {
    report.error = "Eq.(1) violated";
    return report;
  }
  // Eq. (2): Σc1 ≥ Σ_H ≥ Σc2.
  if (report.sum_c1 < sum_high || sum_high < report.sum_c2) {
    report.error = "Eq.(2) violated";
    return report;
  }
  report.ok = true;
  return report;
}

}  // namespace tsp::workload
