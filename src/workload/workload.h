// Copyright 2026 The TSP Authors.
// The paper's §5.1 experimental workload and integrity invariants.
//
// "We divide the key space into a small lower range L used for
// integrity checks and the remaining much larger higher range H. Each
// thread t maintains in the map two private counters indexed with keys
// c1,t and c2,t in L. Iteration i of the main loop of each worker
// thread performs three steps as atomic and isolated operations: it
// first sets the value associated with c1,t to i, then increments the
// value associated with a key drawn with uniform probability from H,
// then sets the value associated with c2,t to i."
//
// Invariants (checked by recovery after fault injection):
//   Eq. (1):  0 ≤ Σ c1,t − Σ c2,t ≤ T
//   Eq. (2):  Σ c1,t ≥ Σ_{k∈H} map[k] ≥ Σ c2,t

#ifndef TSP_WORKLOAD_WORKLOAD_H_
#define TSP_WORKLOAD_WORKLOAD_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "maps/map_interface.h"

namespace tsp::workload {

/// Key-space layout: per-thread counters live in L = [0, 2T); the
/// contended range H starts at kHighKeyBase.
inline constexpr std::uint64_t kHighKeyBase = 1 << 20;

constexpr std::uint64_t C1Key(int thread) {
  return static_cast<std::uint64_t>(thread) * 2;
}
constexpr std::uint64_t C2Key(int thread) {
  return static_cast<std::uint64_t>(thread) * 2 + 1;
}
constexpr std::uint64_t HighKey(std::uint64_t index) {
  return kHighKeyBase + index;
}

struct WorkloadOptions {
  /// Worker threads T (the paper reports 8).
  int threads = 8;
  /// |H|: number of distinct contended keys.
  std::uint64_t high_range = 1 << 16;
  /// Iterations per thread; ignored when `stop` is provided to
  /// RunMapWorkload (threads then run until stopped/killed).
  std::uint64_t iterations_per_thread = 100000;
  /// PRNG seed (each thread derives its own stream).
  std::uint64_t seed = 1;
};

struct WorkloadResult {
  std::uint64_t total_iterations = 0;
  double seconds = 0;
  /// The paper's metric: total worker iterations per second, in
  /// millions (each iteration = three atomic map operations).
  double millions_iter_per_sec = 0;
};

/// Runs the workload on `map` with T worker threads. When `stop` is
/// non-null the iteration budget is unlimited and threads run until
/// *stop becomes true (or the process is killed — the fault-injection
/// mode). Threads call map->OnThreadExit() before joining.
WorkloadResult RunMapWorkload(maps::Map* map, const WorkloadOptions& options,
                              const std::atomic<bool>* stop = nullptr);

/// Result of checking Eq. (1) and Eq. (2) over a quiesced map.
struct InvariantReport {
  bool ok = false;
  std::uint64_t sum_c1 = 0;
  std::uint64_t sum_c2 = 0;
  std::uint64_t sum_high = 0;
  /// Completed iterations per the strongest lower bound (Σ c2).
  std::uint64_t completed_iterations = 0;
  std::string error;  // empty when ok

  std::string ToString() const;
};

/// Traverses `map` and verifies the §5.1 invariants for `threads`
/// workers (also enforces the per-thread strengthening
/// 0 ≤ c1,t − c2,t ≤ 1).
InvariantReport CheckMapInvariants(const maps::Map& map, int threads);

}  // namespace tsp::workload

#endif  // TSP_WORKLOAD_WORKLOAD_H_
