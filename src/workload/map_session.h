// Copyright 2026 The TSP Authors.
// MapSession: one-stop lifecycle for the paper's map experiments.
//
// Encapsulates, per §5 of the paper: opening (or creating) a persistent
// heap, running the recovery pipeline when the previous session crashed
// (Atlas rollback → mark-sweep GC), attaching the requested map variant,
// and exposing it through the common Map interface. Used by the
// fault-injection harness, the Table-1 benchmark, tests and examples.

#ifndef TSP_WORKLOAD_MAP_SESSION_H_
#define TSP_WORKLOAD_MAP_SESSION_H_

#include <memory>
#include <string>

#include "atlas/recovery.h"
#include "atlas/runtime.h"
#include "common/status.h"
#include "lockfree/skiplist.h"
#include "maps/map_interface.h"
#include "maps/mutex_hashmap.h"
#include "maps/skiplist_adapter.h"
#include "pheap/heap.h"

namespace tsp::workload {

/// The four experimental variants of Table 1.
enum class MapVariant {
  kMutexNative = 0,   // "no Atlas"
  kMutexLogOnly = 1,  // Atlas in TSP mode: "log only"
  kMutexLogFlush = 2, // Atlas without TSP: "log + flush"
  kLockFreeSkipList = 3,
};

const char* MapVariantName(MapVariant variant);

/// A live session against one persistent map heap.
class MapSession {
 public:
  struct Config {
    MapVariant variant = MapVariant::kMutexLogOnly;
    std::string path;
    std::size_t heap_size = 512 * 1024 * 1024;
    std::uintptr_t base_address = 0;  // 0 = library default
    std::size_t runtime_area_size = 32 * 1024 * 1024;
    maps::MutexHashMap::Options hash_options;
    /// Background log-pruner interval (mutex+Atlas variants).
    std::uint32_t prune_interval_us = 200;
    /// Sequence stamps leased per block from the global counter
    /// (mutex+Atlas variants); see AtlasRuntime::Options.
    std::uint32_t seq_block_size = 64;
  };

  /// Opens (creating if absent) the heap at config.path, runs recovery
  /// if the previous session crashed, and attaches the map.
  static StatusOr<std::unique_ptr<MapSession>> OpenOrCreate(
      const Config& config);

  ~MapSession();

  MapSession(const MapSession&) = delete;
  MapSession& operator=(const MapSession&) = delete;

  maps::Map* map() { return map_.get(); }
  const maps::Map* map() const { return map_.get(); }
  pheap::PersistentHeap* heap() { return heap_.get(); }
  atlas::AtlasRuntime* runtime() { return runtime_.get(); }
  MapVariant variant() const { return config_.variant; }

  /// True if this open performed crash recovery.
  bool recovered() const { return recovered_; }
  const atlas::RecoveryStats& recovery_stats() const {
    return recovery_.atlas;
  }
  const pheap::GcStats& gc_stats() const { return recovery_.gc; }

  /// Registers all persistent types used by any map variant.
  static void RegisterAllTypes(pheap::TypeRegistry* registry);

  /// Marks an orderly shutdown; destroying the session without calling
  /// this is indistinguishable from a crash.
  void CloseClean();

 private:
  /// Persistent session root: tags the variant and points at the map.
  struct SessionRoot {
    static constexpr std::uint32_t kPersistentTypeId = 0x53455353;  // "SESS"
    std::uint32_t variant_tag;
    std::uint32_t reserved;
    void* map_root;
  };

  explicit MapSession(Config config) : config_(std::move(config)) {}

  Status Init();

  Config config_;
  std::unique_ptr<pheap::PersistentHeap> heap_;
  std::unique_ptr<atlas::AtlasRuntime> runtime_;
  std::unique_ptr<lockfree::SkipListMap> skiplist_;
  std::unique_ptr<maps::Map> map_;
  bool recovered_ = false;
  atlas::FullRecoveryResult recovery_;
};

}  // namespace tsp::workload

#endif  // TSP_WORKLOAD_MAP_SESSION_H_
