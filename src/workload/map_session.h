// Copyright 2026 The TSP Authors.
// MapSession: one-stop lifecycle for the paper's map experiments.
//
// Encapsulates, per §5 of the paper: opening (or creating) a persistent
// heap, running the recovery pipeline when the previous session crashed
// (Atlas rollback → mark-sweep GC), attaching the requested map variant,
// and exposing it through the common Map interface. Used by the
// fault-injection harness, the Table-1 benchmark, tests and examples.
//
// With Config::shards > 1 the session opens N shard heaps (each with
// its own Atlas runtime and undo logs, each in its own address slot),
// recovers them in parallel, and serves a maps::ShardedMap that routes
// operations by key hash. The workload and the Eq. (1)/(2) invariant
// checker work through the Map interface, so they apply unchanged.

#ifndef TSP_WORKLOAD_MAP_SESSION_H_
#define TSP_WORKLOAD_MAP_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "atlas/recovery.h"
#include "atlas/runtime.h"
#include "common/status.h"
#include "lockfree/skiplist.h"
#include "maps/map_interface.h"
#include "maps/mutex_hashmap.h"
#include "maps/skiplist_adapter.h"
#include "pheap/backend.h"
#include "pheap/heap.h"

namespace tsp::workload {

/// The four experimental variants of Table 1.
enum class MapVariant {
  kMutexNative = 0,   // "no Atlas"
  kMutexLogOnly = 1,  // Atlas in TSP mode: "log only"
  kMutexLogFlush = 2, // Atlas without TSP: "log + flush"
  kLockFreeSkipList = 3,
};

const char* MapVariantName(MapVariant variant);

/// A live session against one persistent map heap (or a set of shard
/// heaps).
class MapSession {
 public:
  struct Config {
    MapVariant variant = MapVariant::kMutexLogOnly;
    std::string path;
    std::size_t heap_size = 512 * 1024 * 1024;  // per shard
    std::uintptr_t base_address = 0;  // 0 = slot-allocated; shards>1 needs 0
    std::size_t runtime_area_size = 32 * 1024 * 1024;
    maps::MutexHashMap::Options hash_options;
    /// Background log-pruner interval (mutex+Atlas variants).
    std::uint32_t prune_interval_us = 200;
    /// Sequence stamps leased per block from the global counter
    /// (mutex+Atlas variants); see AtlasRuntime::Options.
    std::uint32_t seq_block_size = 64;
    /// Shard heaps backing the map (1 = classic single heap). Fixed for
    /// the life of the persistent data: reopening with a different
    /// count fails (shard 0 records the count in its session root).
    int shards = 1;
    /// Worker threads for parallel shard recovery; 0 = min(shards,
    /// hardware concurrency).
    int recovery_threads = 0;
    /// Storage mechanics for every shard; null = posix files.
    std::shared_ptr<pheap::RegionBackend> backend;
  };

  /// Opens (creating if absent) the heap(s) at config.path, runs
  /// recovery if the previous session crashed, and attaches the map.
  static StatusOr<std::unique_ptr<MapSession>> OpenOrCreate(
      const Config& config);

  /// The backing heap paths OpenOrCreate uses (index-aligned with shard
  /// numbers): path, path.shard1, ... Useful for cleanup and offline
  /// inspection.
  static std::vector<std::string> ShardPaths(const Config& config);

  ~MapSession();

  MapSession(const MapSession&) = delete;
  MapSession& operator=(const MapSession&) = delete;

  maps::Map* map() { return map_.get(); }
  const maps::Map* map() const { return map_.get(); }
  int shard_count() const { return static_cast<int>(heaps_.size()); }
  pheap::PersistentHeap* heap() { return heaps_[0].get(); }
  pheap::PersistentHeap* heap(int shard) { return heaps_[shard].get(); }
  atlas::AtlasRuntime* runtime() {
    return runtimes_.empty() ? nullptr : runtimes_[0].get();
  }
  atlas::AtlasRuntime* runtime(int shard) {
    return runtimes_.empty() ? nullptr : runtimes_[shard].get();
  }
  MapVariant variant() const { return config_.variant; }

  /// True if this open performed crash recovery (on any shard).
  bool recovered() const { return recovered_; }
  /// Shard-summed recovery statistics.
  const atlas::RecoveryStats& recovery_stats() const {
    return recovery_.atlas;
  }
  const pheap::GcStats& gc_stats() const { return recovery_.gc; }

  /// Registers all persistent types used by any map variant.
  static void RegisterAllTypes(pheap::TypeRegistry* registry);

  /// Marks an orderly shutdown; destroying the session without calling
  /// this is indistinguishable from a crash.
  void CloseClean();

  /// True when this session armed TSPRace (TSP_RACE=1 at Init).
  bool race_detector_armed() const { return race_detector_armed_; }

 private:
  /// Persistent session root: tags the variant and shard count, points
  /// at the map.
  struct SessionRoot {
    static constexpr std::uint32_t kPersistentTypeId = 0x53455353;  // "SESS"
    std::uint32_t variant_tag;
    /// Shard count recorded at creation (all shards agree); 0 in roots
    /// written before sharding existed is read as 1.
    std::uint32_t shard_count;
    void* map_root;
  };

  explicit MapSession(Config config) : config_(std::move(config)) {}

  Status Init();
  /// Locates/creates shard `i`'s session root, attaches its runtime,
  /// and returns its map.
  StatusOr<std::unique_ptr<maps::Map>> InitShard(int shard);
  /// Disables a session-armed TSPRace, saving the lock-order graph
  /// sidecar first when TSP_RACE_GRAPH names a path.
  void DisarmRaceDetector();

  Config config_;
  std::vector<std::unique_ptr<pheap::PersistentHeap>> heaps_;
  std::vector<std::unique_ptr<atlas::AtlasRuntime>> runtimes_;
  std::vector<std::unique_ptr<lockfree::SkipListMap>> skiplists_;
  std::unique_ptr<maps::Map> map_;
  bool recovered_ = false;
  bool race_detector_armed_ = false;
  atlas::FullRecoveryResult recovery_;
};

}  // namespace tsp::workload

#endif  // TSP_WORKLOAD_MAP_SESSION_H_
